"""Multi-tenant scaling: one logical stream over K independent shards.

A :class:`ShardedService` partitions the population across ``K``
independent :class:`~repro.serve.streaming.StreamingSynthesizer` shards.
Each shard runs the full algorithm on its own disjoint sub-population
with its *own* zCDP accountant — because the shards hold disjoint
individuals, parallel composition applies and the service-wide guarantee
is the **maximum** per-shard spend, not the sum.  Query answers are
merged as population-weighted averages of the per-shard answers, which
for counting queries equals answering from the union of the shards'
synthetic populations.

Shards are independent state machines, and *how* they advance is a
pluggable :class:`~repro.serve.executor.ShardExecutor` strategy:
``executor="serial"`` (default; today's loop, bit for bit),
``"thread"`` (a thread pool), or ``"process"`` (one persistent forked
worker per shard, columns staged through shared memory).  All three
produce byte-identical releases, ledgers, and checkpoint bundles.  The
whole service checkpoints into a single bundle that nests one streaming
bundle per shard.

Example
-------
::

    from repro.serve import ShardedService
    from repro.queries import HammingAtLeast

    service = ShardedService(4, algorithm="cumulative",
                             horizon=12, rho=0.005, seed=0,
                             executor="process")
    for column in arriving_columns:     # one (n,) bit vector per round
        service.observe(column)
    service.answer(HammingAtLeast(3), t=6)
    service.checkpoint("service.ckpt")
    service.close()

Multi-attribute streams (``algorithm="multi_attribute"``) feed one
``(n, d)`` :class:`~repro.types.AttributeFrame` (or ``name -> column``
mapping) per round; rows are split across shards exactly like single
columns.
"""

from __future__ import annotations

import io
import warnings
from collections import deque

import numpy as np

from repro.core.population import validate_binary_column, validate_exit_ids
from repro.exceptions import (
    ConfigurationError,
    ConsistencyError,
    DataValidationError,
    DegradedServiceWarning,
    NotFittedError,
    RecoveryError,
    SerializationError,
)
from repro.queries.plan import AnswerCache, workload_key
from repro.rng import SeedLike, spawn
from repro.serve.checkpoint import read_bundle, write_bundle
from repro.serve.executor import RoundTicket, make_executor
from repro.serve.streaming import _ALGORITHMS, StreamingSynthesizer
from repro.types import AttributeFrame, as_frame

__all__ = ["ShardedService"]


class ShardedService:
    """K independent streaming shards behind one observe/answer façade.

    Parameters
    ----------
    n_shards:
        Number of shards ``K >= 1``.  Individuals are assigned
        contiguously (``np.array_split`` order) on the first observed
        round and the assignment is fixed for the stream's lifetime.
    algorithm:
        ``"cumulative"`` (Algorithm 2, default), ``"fixed_window"``
        (Algorithm 1), ``"categorical_window"`` (Algorithm 1 over a
        multi-category alphabet; pass ``alphabet=`` in the synthesizer
        kwargs), or ``"multi_attribute"`` (per-attribute window engines
        over a shared population; pass ``attributes=`` in the
        synthesizer kwargs and feed ``(n, d)`` frames per round).
    seed:
        Master seed; each shard receives an independent spawned child
        stream, so results are reproducible for any ``K``.
    executor:
        Shard-stepping strategy: ``"serial"`` (default), ``"thread"``,
        or ``"process"`` — see :mod:`repro.serve.executor`.  ``None``
        reads ``$REPRO_SHARD_EXECUTOR``, falling back to serial.  All
        strategies produce byte-identical outputs; ``"process"`` moves
        each shard into a persistent forked worker (so the
        :attr:`shards` property becomes unavailable) and stages round
        columns through shared memory.
    policy:
        Optional :class:`~repro.serve.policy.RetryPolicy`; the executor
        applies its ``rpc_timeout`` to every worker RPC under the
        ``"process"`` strategy (``None`` keeps the block-forever
        default).  The retry/backoff and checkpoint-cadence knobs are
        consumed by the :class:`~repro.serve.supervisor.SupervisedService`
        wrapper, not here.
    **synthesizer_kwargs:
        Forwarded to every shard's synthesizer constructor — for
        ``"cumulative"`` at least ``horizon`` and ``rho``; for
        ``"fixed_window"`` also ``window``.  Note ``rho`` is the
        *per-shard* budget: by parallel composition over disjoint
        sub-populations the whole service satisfies ``rho``-zCDP, not
        ``K * rho``.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``n_shards < 1``, the algorithm name is unknown, or the
        executor strategy is unknown/unsupported on this platform.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        algorithm: str = "cumulative",
        seed: SeedLike = None,
        executor: str | None = None,
        policy=None,
        **synthesizer_kwargs,
    ):
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self.algorithm = str(algorithm)
        self._boundaries: np.ndarray | None = None  # K+1 initial split points
        self._shard_of: np.ndarray | None = None  # ever-id -> shard
        self._active: np.ndarray | None = None  # ever-id -> present now
        self._loads: np.ndarray | None = None  # active count per shard
        self._members: list[np.ndarray] | None = None  # ever-ids per shard
        self._poisoned: str | None = None  # set when shard clocks desync
        self._disabled: dict[int, str] = {}  # shard -> degradation reason
        # One source of truth for supported algorithms: the streaming
        # wrapper's registry, whose constructor classmethods share the
        # algorithm tags (StreamingSynthesizer.cumulative etc.).
        if self.algorithm not in _ALGORITHMS:
            raise ConfigurationError(
                f"algorithm must be one of {sorted(_ALGORITHMS)}, got {algorithm!r}"
            )
        factory = getattr(StreamingSynthesizer, self.algorithm)
        seeds = spawn(seed, self.n_shards)
        shards = [
            factory(seed=shard_seed, **synthesizer_kwargs) for shard_seed in seeds
        ]
        self._adopt_shards(shards, executor, policy)

    def _adopt_shards(
        self,
        shards: list[StreamingSynthesizer],
        executor: str | None,
        policy=None,
    ) -> None:
        """Cache shard-derived config, then hand the shards to an executor.

        Must run *before* the executor is built: the process strategy
        forks immediately, making the parent-side shard objects stale.
        """
        self._horizon = shards[0].horizon
        self._t = shards[0].t
        synthesizer = shards[0].synthesizer
        if self.algorithm == "multi_attribute":
            # Multi-attribute shards validate per attribute, not against
            # one scalar alphabet; cache the declared names/alphabets so
            # round validation never reaches into (possibly forked-away)
            # shard objects.
            self._alphabet = None
            self._attribute_names = synthesizer.attribute_names
            self._alphabets = synthesizer.alphabets
        else:
            self._alphabet = getattr(synthesizer, "alphabet", 2)
            self._attribute_names = None
            self._alphabets = None
        self._executor = make_executor(executor, shards, self.algorithm, policy)
        self._pending: deque[tuple[int, RoundTicket]] = deque()
        # Release version for the batched answer cache: bumped by every
        # committed round and by shard disablement (restore builds a fresh
        # service, so its cache starts empty).
        self._version = 0
        self._answer_cache = AnswerCache()

    @classmethod
    def _from_shards(
        cls,
        shards: list[StreamingSynthesizer],
        algorithm: str,
        boundaries: np.ndarray | None,
        shard_of: np.ndarray | None,
        active: np.ndarray | None,
        executor: str | None = "serial",
        policy=None,
    ) -> "ShardedService":
        """Internal: assemble a service around already-built shards."""
        service = object.__new__(cls)
        service.n_shards = len(shards)
        service.algorithm = algorithm
        service._boundaries = boundaries
        service._shard_of = shard_of
        service._active = active
        service._loads = None
        service._members = None
        if shard_of is not None:
            service._rebuild_assignment_caches()
        service._poisoned = None
        service._disabled = {}
        service._adopt_shards(shards, executor, policy)
        return service

    def _rebuild_assignment_caches(self) -> None:
        """Recompute the incremental load/membership caches from scratch.

        Used at restore time (and after round 1 fixes the assignment);
        every later churn round maintains these incrementally instead of
        re-deriving them with a full ``bincount``/``flatnonzero`` sweep
        over the ever-population.
        """
        self._loads = np.bincount(
            self._shard_of[self._active], minlength=self.n_shards
        )[: self.n_shards].astype(np.int64)
        self._members = [
            np.flatnonzero(self._shard_of == s) for s in range(self.n_shards)
        ]

    # ------------------------------------------------------------------
    # Serving API
    # ------------------------------------------------------------------

    @property
    def shards(self) -> tuple[StreamingSynthesizer, ...]:
        """The per-shard streaming synthesizers, in assignment order.

        Raises
        ------
        repro.exceptions.ConfigurationError
            Under the ``"process"`` executor, whose shard objects live
            in worker processes.
        """
        self._drain()
        return tuple(self._executor.shards)

    @property
    def executor(self) -> str:
        """The active shard-stepping strategy name."""
        return self._executor.strategy

    @property
    def t(self) -> int:
        """Rounds ingested so far (dispatched rounds for async callers)."""
        return self._t

    @property
    def horizon(self) -> int:
        """Total rounds the stream will carry."""
        return self._horizon

    @property
    def n(self) -> int:
        """Currently active population across all shards."""
        if self._active is None:
            raise NotFittedError("no data observed yet")
        return int(self._active.sum())

    @property
    def n_ever(self) -> int:
        """Individuals ever admitted across all shards."""
        if self._shard_of is None:
            raise NotFittedError("no data observed yet")
        return int(self._shard_of.shape[0])

    def shard_slices(self) -> list[slice]:
        """The contiguous index range each shard initially owned.

        Returns
        -------
        list of slice
            ``slice(start, stop)`` per shard, in shard order, covering
            the *round-1* population; later entrants are routed
            individually (see :meth:`shard_members`).

        Raises
        ------
        repro.exceptions.NotFittedError
            Before the first round fixes the assignment.
        """
        if self._boundaries is None:
            raise NotFittedError("no data observed yet")
        bounds = self._boundaries
        return [slice(int(bounds[i]), int(bounds[i + 1])) for i in range(self.n_shards)]

    def shard_members(self) -> list[np.ndarray]:
        """Global ids each shard owns, in shard-admission order.

        Returns
        -------
        list of numpy.ndarray
            Per shard, the ascending global ids ever assigned to it
            (admission order and ascending id order coincide).

        Raises
        ------
        repro.exceptions.NotFittedError
            Before the first round fixes the assignment.
        """
        if self._shard_of is None:
            raise NotFittedError("no data observed yet")
        return [members.copy() for members in self._members]

    def shard_loads(self) -> np.ndarray:
        """Active individuals per shard — the entrant-routing load metric.

        Maintained incrementally as churn is ingested (exits decrement,
        routed entrants increment), so reading it — and the entrant
        routing that consumes it — never re-scans the ever-population.
        """
        if self._active is None:
            raise NotFittedError("no data observed yet")
        return self._loads.copy()

    def observe(self, data, *, entrants: int = 0, exits=None) -> "ShardedService":
        """Ingest the next round: split the reports and advance every shard.

        Parameters
        ----------
        data:
            The round's report vector over the *currently active*
            population, in ascending global id order (this round's
            entrants last) — or, for ``algorithm="multi_attribute"``, an
            ``(n, d)`` :class:`~repro.types.AttributeFrame` (or
            ``name -> column`` mapping) whose rows follow the same
            order.  The first round fixes the initial contiguous shard
            assignment.
        entrants:
            Individuals entering this round.  Each entrant is routed to
            the **least-loaded shard** (fewest active individuals, ties
            to the lowest shard index), which keeps shard populations
            balanced as the panel churns.
        exits:
            Global ids departing as of this round; each is translated to
            its owning shard's local id and retired there.  Exits are
            permanent.

        Returns
        -------
        ShardedService
            ``self``, for chaining with :meth:`answer`.

        Raises
        ------
        repro.exceptions.DataValidationError
            On non-1-D or out-of-alphabet input, a column length disagreeing
            with the declared churn, an exhausted horizon, invalid exit
            ids, or when the initial population is smaller than the
            shard count.  This validation happens *before* any shard
            advances, so a rejected column leaves every shard's clock
            unchanged and the corrected column can simply be resubmitted.
        repro.exceptions.ConsistencyError
            If a shard fails *mid-round* (only possible through
            noise-dependent per-shard failures such as
            ``on_negative="raise"``): other shards have already ingested
            the round, so the service marks itself desynchronized and
            refuses all further operations except :meth:`shard_ledgers`
            — restore from the last checkpoint (or use
            ``on_negative="redistribute"``, the default, which cannot
            fail mid-round).
        """
        self.observe_async(data, entrants=entrants, exits=exits).wait()
        return self

    def observe_async(
        self, data, *, entrants: int = 0, exits=None
    ) -> RoundTicket:
        """Validate, stage, and dispatch one round without joining it.

        The round is validated and the service-side churn assignment is
        committed *synchronously* (so a rejected round raises here and
        leaves every shard untouched); the per-shard ingestion is then
        handed to the executor and a :class:`~repro.serve.executor.RoundTicket`
        is returned.  Under the ``"process"`` strategy up to **two**
        rounds may be in flight — staging round ``r+1``'s columns into
        shared memory overlaps round ``r``'s compute — and dispatching a
        third blocks on the oldest (its staging buffer is being reused).
        The serial and thread strategies ingest before returning, so the
        ticket is already complete.

        Joining happens implicitly before any read (``answer``,
        ``shard_ledgers``, ``checkpoint`` …) or explicitly via
        ``ticket.wait()``, which re-raises the round's failure (and
        poisons the service) if a shard rejected it mid-flight.
        """
        self._check_not_poisoned()
        # All-or-nothing rounds need the value check *before* any shard
        # advances; the legal range is the shards' alphabet (2 for the
        # binary algorithms) or, for multi-attribute streams, each
        # attribute's declared alphabet.
        if self._attribute_names is not None:
            data = as_frame(data, names=self._attribute_names)
            for name, alphabet in zip(self._attribute_names, self._alphabets):
                attribute_column = data.column(name)
                if alphabet == 2:
                    validate_binary_column(attribute_column)
                elif attribute_column.size and (
                    attribute_column.min() < 0
                    or attribute_column.max() >= alphabet
                ):
                    raise DataValidationError(
                        f"column entries for {name!r} must lie in [0, {alphabet})"
                    )
            n_reports = data.n
        else:
            data = np.asarray(data)
            if data.ndim != 1:
                raise DataValidationError(
                    f"column must be 1-D, got shape {data.shape}"
                )
            if self._alphabet == 2:
                validate_binary_column(data)
            elif data.size and (data.min() < 0 or data.max() >= self._alphabet):
                raise DataValidationError(
                    f"column entries must lie in [0, {self._alphabet})"
                )
            n_reports = int(data.shape[0])
        if self._t >= self._horizon:
            raise DataValidationError(f"horizon {self._horizon} already exhausted")
        entrants = int(entrants)
        if entrants < 0:
            raise DataValidationError(f"entrants must be non-negative, got {entrants}")
        exit_ids = np.asarray([] if exits is None else exits, dtype=np.int64)
        round_number = self._t + 1
        if self._boundaries is None:
            if exit_ids.size:
                raise DataValidationError(
                    "round 1 admits the initial population; nobody can exit yet"
                )
            if entrants > n_reports:
                raise DataValidationError(
                    f"round 1 declares {entrants} entrants but the column has "
                    f"only {n_reports} reports"
                )
            n = n_reports
            if n < self.n_shards:
                raise DataValidationError(
                    f"population {n} is smaller than n_shards={self.n_shards}"
                )
            sizes = np.array(
                [len(part) for part in np.array_split(np.arange(n), self.n_shards)]
            )
            self._boundaries = np.concatenate([[0], np.cumsum(sizes)])
            self._shard_of = np.repeat(np.arange(self.n_shards), sizes)
            self._active = np.ones(n, dtype=bool)
            self._rebuild_assignment_caches()
        elif n_reports != self.n - exit_ids.size + entrants:
            raise DataValidationError(
                f"column has {n_reports} entries, expected "
                f"{self.n - exit_ids.size + entrants} (n_active={self.n}, "
                f"{exit_ids.size} exits, {entrants} entrants)"
            )
        churn_round = not (
            round_number == 1 or (not exit_ids.size and not entrants)
        )
        if not churn_round:
            never_churned = (
                self._shard_of.shape[0] == int(self._boundaries[-1])
                and self._active.all()
            )
            if never_churned:
                # Fixed-population fast path: bit-exact legacy slicing.
                shard_columns = [
                    self._take(data, part) for part in self.shard_slices()
                ]
            else:
                shard_columns = self._split_active_column(data)
            shard_churn = [(0, None)] * self.n_shards
        else:
            shard_columns, shard_churn = self._route_churn(data, entrants, exit_ids)
        # Double-buffered staging: at most two rounds in flight, so the
        # parity buffer of round r is free again when round r+2 stages.
        while len(self._pending) >= 2:
            self._wait_oldest()
        jobs = [
            (shard_column, shard_entrants, shard_exits)
            for shard_column, (shard_entrants, shard_exits) in zip(
                shard_columns, shard_churn
            )
        ]
        try:
            inner = self._executor.dispatch_round(jobs)
        except Exception as exc:
            # A dispatch failure is retryable only if no shard received
            # the round AND no service-side churn state was committed
            # (_route_churn mutates the assignment before dispatching).
            # Otherwise the clocks can no longer be trusted: fail closed.
            dispatched = getattr(exc, "dispatched", None)
            if churn_round or (dispatched is not None and dispatched > 0):
                if self._poisoned is None:
                    self._poisoned = (
                        f"round {round_number} dispatch failed after "
                        f"{dispatched or 0} shards received it"
                        + (" (churn already committed)" if churn_round else "")
                    )
            raise
        self._t = round_number
        self._version += 1
        ticket = RoundTicket(lambda: self._join_round(round_number, inner))
        self._pending.append((round_number, ticket))
        if inner.done:
            # Serial/thread strategies ingest eagerly; surface failures
            # now (poisoning included) instead of at the next read.
            ticket.wait()
        return ticket

    def _join_round(self, round_number: int, inner: RoundTicket) -> int:
        """Join one dispatched round, poisoning the service on failure."""
        try:
            inner.wait()
        except Exception:
            # Pre-validation covers every data-level failure, so reaching
            # here means a shard failed *during* its update.  Whether or
            # not other shards advanced, the round is now partially
            # ingested and the clocks can no longer be trusted —
            # fail closed instead of serving silently wrong merges.
            if self._poisoned is None:
                self._poisoned = (
                    f"round {round_number} failed after {inner.completed} of "
                    f"{self.n_shards} shards ingested it"
                )
            raise
        finally:
            self._pending = deque(
                (number, pending)
                for number, pending in self._pending
                if number != round_number
            )
        return inner.completed

    def _wait_oldest(self) -> None:
        """Join the oldest in-flight round (propagating its failure)."""
        self._pending[0][1].wait()

    def _drain(self) -> None:
        """Join every in-flight round before reading derived state."""
        while self._pending:
            self._wait_oldest()

    @staticmethod
    def _take(data, rows):
        """Row-select from a report column or an :class:`AttributeFrame`.

        The one indexing primitive the splitting/routing paths use, so
        multi-attribute frames flow through them with the single-column
        code path untouched (slices stay views either way).
        """
        if isinstance(data, AttributeFrame):
            return data.take(rows)
        return data[rows]

    def _split_active_column(self, data) -> list:
        """Split a churn-free round's reports along the current membership.

        Each shard's active members occupy ascending row positions;
        when those positions are contiguous (always true until an exit
        interleaves shards, and common afterwards for shards that kept
        their block) the shard's slice is returned as a **view**, so a
        churn-free round on a 10M-row panel splits without copying.
        """
        position = np.cumsum(self._active) - 1  # active id -> row position
        out: list = []
        for s in range(self.n_shards):
            members = self._members[s]
            indices = position[members[self._active[members]]]
            if not indices.size:
                out.append(self._take(data, slice(0, 0)))
            elif int(indices[-1]) - int(indices[0]) + 1 == indices.size:
                out.append(
                    self._take(data, slice(int(indices[0]), int(indices[-1]) + 1))
                )
            else:
                out.append(self._take(data, indices))
        return out

    def _route_churn(
        self, data, entrants: int, exit_ids: np.ndarray
    ) -> tuple[list, list[tuple[int, np.ndarray]]]:
        """Translate a churn round into per-shard reports and churn events.

        Validates the exits against the service-wide active set, routes
        each entrant to the least-loaded shard, and builds each shard's
        reports in its admission order (survivors first, entrants last)
        — exactly what the shard synthesizers expect.
        """
        n_ever = self._shard_of.shape[0]
        # Same rules as PopulationLedger.retire, applied service-wide
        # *before* any shard advances (all-or-nothing rounds).
        exit_ids = validate_exit_ids(exit_ids, self._active)
        # Route entrants to the least-loaded shard, one by one (ties to
        # the lowest shard index), counting this round's exits as gone.
        # The load vector is the incrementally maintained cache — no
        # bincount over the ever-population per churn round.
        loads = self._loads.copy()
        if exit_ids.size:
            loads -= np.bincount(
                self._shard_of[exit_ids], minlength=self.n_shards
            )[: self.n_shards]
        # Degraded mode note: a disabled shard still participates in
        # routing (and "accepts" its entrants, whose dispatch is then
        # dropped with the rest of its slice).  Diverting them would
        # change which entrants the *surviving* shards receive and break
        # the byte-identity the journal replay is verified against —
        # survivors must evolve exactly as in the healthy run.
        entrant_shards = np.empty(entrants, dtype=np.int64)
        for index in range(entrants):
            target = int(np.argmin(loads))
            entrant_shards[index] = target
            loads[target] += 1

        # Survivors (ascending id) occupy the column's head, entrants the
        # tail; map every reporting id to its column position.
        survivors = np.flatnonzero(self._active)
        if exit_ids.size:
            survivors = survivors[~np.isin(survivors, exit_ids)]
        position = np.empty(n_ever + entrants, dtype=np.int64)
        position[survivors] = np.arange(survivors.shape[0])
        new_ids = n_ever + np.arange(entrants)
        position[new_ids] = survivors.shape[0] + np.arange(entrants)

        shard_columns: list = []
        shard_churn: list[tuple[int, np.ndarray]] = []
        new_members: list[np.ndarray] = []
        for s in range(self.n_shards):
            members = self._members[s]  # ascending ids (cached)
            if exit_ids.size:
                shard_exit_global = exit_ids[self._shard_of[exit_ids] == s]
            else:
                shard_exit_global = exit_ids
            # Shard-local id = rank in the shard's admission order.
            local_exits = np.searchsorted(members, shard_exit_global)
            surviving_members = members[self._active[members]]
            if shard_exit_global.size:
                surviving_members = surviving_members[
                    ~np.isin(surviving_members, shard_exit_global)
                ]
            shard_new = new_ids[entrant_shards == np.int64(s)]
            reporting = np.concatenate([surviving_members, shard_new])
            shard_columns.append(self._take(data, position[reporting]))
            shard_churn.append((int(shard_new.shape[0]), local_exits))
            new_members.append(
                np.concatenate([members, shard_new]) if shard_new.size else members
            )

        # Commit the service-side assignment only after the per-shard
        # views are built (shard-level failures then poison the service).
        self._active[exit_ids] = False
        self._shard_of = np.concatenate([self._shard_of, entrant_shards])
        self._active = np.concatenate([self._active, np.ones(entrants, dtype=bool)])
        self._loads = loads
        self._members = new_members
        return shard_columns, shard_churn

    def answer(self, query, t: int, **kwargs) -> float:
        """Merged query answer at round ``t``.

        Parameters
        ----------
        query:
            Any query the per-shard releases answer
            (:class:`~repro.queries.cumulative.HammingAtLeast` /
            ``HammingExactly`` for the cumulative algorithm, window
            queries for the fixed-window one, categorical window
            queries for the categorical one).
        t:
            Round to answer at.
        **kwargs:
            Forwarded to every shard release's ``answer`` (e.g.
            ``debias=`` for window queries).

        Returns
        -------
        float
            The population-weighted average of per-shard answers.  Since
            each shard's answer is a fraction of its own (synthetic)
            population, the weighted average equals the fraction over
            the union — exactly what a single unsharded release reports.
            On a :attr:`degraded` service the average runs over the
            *surviving* shards only and every call emits a
            :class:`~repro.exceptions.DegradedServiceWarning`.
        """
        self._check_not_poisoned()
        self._drain()
        self._warn_if_degraded("answer")
        weighted = 0.0
        total = 0.0
        for pair in self._executor.answer(query, t, dict(kwargs)):
            if pair is None:  # disabled shard (degraded mode)
                continue
            weight, value = pair
            weighted += weight * value
            total += weight
        return weighted / total

    def answer_batch(self, queries, times, **kwargs) -> np.ndarray:
        """Merged answers for a whole workload, as one grid.

        Ships the compiled workload to every shard in a single executor
        round-trip (one RPC per worker under the ``"process"`` strategy)
        and merges the per-shard answer matrices with the same
        shard-order weighted accumulation as :meth:`answer` — the
        returned grid is bit-identical with calling :meth:`answer` per
        ``(query, time)`` cell.

        Parameters
        ----------
        queries, times:
            The workload grid; every ``t`` must be an answerable round.
            Cells with ``t < query.min_time()`` come back ``NaN``.
        **kwargs:
            Forwarded to every shard release (e.g. ``debias=``).

        Returns
        -------
        numpy.ndarray
            The ``(len(queries), len(times))`` float64 merged grid.
            Results are cached per service release-version, so repeating
            a workload between rounds costs one dictionary lookup; any
            committed round or shard disablement invalidates the cache.
        """
        self._check_not_poisoned()
        self._drain()
        self._warn_if_degraded("answer_batch")
        queries = list(queries)
        times = [int(t) for t in times]
        key = workload_key(queries, times, **kwargs)
        if key is not None:
            hit = self._answer_cache.get(self._version, key)
            if hit is not None:
                return hit
        weighted = np.zeros((len(queries), len(times)), dtype=np.float64)
        total = np.zeros(len(times), dtype=np.float64)
        for pair in self._executor.answer_batch(queries, times, dict(kwargs)):
            if pair is None:  # disabled shard (degraded mode)
                continue
            weights, grid = pair
            weighted += weights[None, :] * grid
            total += weights
        out = weighted / total[None, :]
        if key is not None:
            self._answer_cache.put(self._version, key, out)
        return out

    def _check_not_poisoned(self) -> None:
        """Refuse to operate on a desynchronized service."""
        if self._poisoned is not None:
            raise ConsistencyError(
                f"shard clocks are desynchronized ({self._poisoned}); "
                "restore the service from its last checkpoint"
            )

    def _warn_if_degraded(self, operation: str) -> None:
        if self._disabled:
            names = ", ".join(
                f"shard {index} ({reason})"
                for index, reason in sorted(self._disabled.items())
            )
            warnings.warn(
                f"{operation} served degraded: {names} excluded; answers "
                "merge the surviving shards only",
                DegradedServiceWarning,
                stacklevel=3,
            )

    @property
    def degraded(self) -> bool:
        """True when any shard has been disabled (degraded serving)."""
        return bool(self._disabled)

    def disable_shard(self, index: int, reason: str = "unrecoverable") -> None:
        """Exclude an unrecoverable shard and serve from the survivors.

        This is the opt-in graceful-degradation escape hatch: the
        disabled shard's slice of every future column is dropped at
        dispatch and :meth:`answer` merges the surviving shards (with a
        :class:`~repro.exceptions.DegradedServiceWarning` per call).
        Entrant routing is *unchanged* — the disabled shard still
        virtually accepts its share (those entrants go unserved with
        it), so the surviving shards receive exactly the individuals
        they would have in a healthy run and their state stays
        byte-identical, which is what lets supervised recovery replay a
        journal across a degradation without re-noising.
        The full column contract is *unchanged* — the disabled shard's
        members still report; their reports are simply not processed.
        :meth:`checkpoint` refuses on a degraded service (the disabled
        shard's state is gone), so degradation is a bridge to a rebuild,
        not a steady state.

        Parameters
        ----------
        index:
            Shard to disable.
        reason:
            Human-readable cause, surfaced by :meth:`health_report`.

        Raises
        ------
        repro.exceptions.ConfigurationError
            On an out-of-range index or when disabling would leave no
            live shard.
        """
        if not 0 <= index < self.n_shards:
            raise ConfigurationError(
                f"shard index must lie in [0, {self.n_shards}), got {index}"
            )
        if len(self._disabled) >= self.n_shards - 1 and index not in self._disabled:
            raise ConfigurationError(
                "cannot disable the last live shard; restore the service "
                "from a checkpoint instead"
            )
        self._disabled[int(index)] = str(reason)
        self._executor.disable(int(index))
        self._version += 1  # degraded merges must not reuse cached grids

    def health_report(self) -> list[dict]:
        """Per-shard status for operators and the supervision layer.

        Returns
        -------
        list of dict
            One entry per shard, in shard order:
            ``{"shard": index, "status": "ok" | "disabled" | "dead",
            "reason": str | None, "active": int}`` where ``active`` is
            the shard's active-population load (0 before round 1).
            ``"dead"`` marks a worker process that stopped responding
            but has not been formally disabled.
        """
        health = self._executor.worker_health()
        loads = (
            self._loads
            if self._loads is not None
            else np.zeros(self.n_shards, dtype=np.int64)
        )
        report = []
        for index in range(self.n_shards):
            if index in self._disabled:
                status, reason = "disabled", self._disabled[index]
            elif not health[index]:
                status, reason = "dead", "worker process is not alive"
            else:
                status, reason = "ok", None
            report.append(
                {
                    "shard": index,
                    "status": status,
                    "reason": reason,
                    "active": int(loads[index]),
                }
            )
        return report

    def state_fingerprints(self) -> list:
        """Per-shard state digests (see ``StreamingSynthesizer.fingerprint``).

        Returns
        -------
        list
            One hex SHA-256 per shard, in shard order (``None`` for
            disabled shards).  Equal fingerprints guarantee byte-
            identical checkpoint bundles and future releases; the
            release journal records these per round so crash recovery
            can verify a replay reproduced the published state exactly.
        """
        self._check_not_poisoned()
        self._drain()
        return self._executor.fingerprints()

    def zcdp_spent(self) -> float:
        """Service-wide zCDP spend: the *maximum* over shards.

        The shards hold disjoint individuals, so parallel composition
        gives the union mechanism a guarantee of ``max_k rho_k``, not the
        sum.  Returns 0.0 when every shard runs noiseless
        (``rho = inf``).  On a degraded service the maximum runs over
        the surviving shards (a disabled shard stopped spending when it
        stopped stepping, so the live maximum still bounds it from the
        round it died onward; the supervisor additionally floors this
        with the journaled pre-failure spend).
        """
        return max(
            (entry[0] for entry in self.shard_ledgers() if entry is not None),
            default=0.0,
        )

    def shard_ledgers(self) -> list:
        """Per-shard ``(spent, remaining)`` zCDP, in shard order.

        Shards running noiseless (``rho = inf``) report ``(0.0, inf)``.
        Disabled shards report ``None`` (their accountant is gone with
        their worker).  Readable even on a poisoned service (it is the
        one surface the desync guard does not cover — auditing spend
        stays possible).
        """
        try:
            self._drain()
        except Exception:
            # A failed in-flight round poisons the service but must not
            # hide the ledgers — the accountants charged before any
            # per-shard failure could occur.
            pass
        return self._executor.ledgers()

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def checkpoint(self, path) -> None:
        """Serialize the whole service (all shards) into one bundle.

        Parameters
        ----------
        path:
            Target file path or writable binary file object.  The bundle
            nests one complete streaming bundle per shard (stored as
            bytes inside the service's ``arrays.npz``), so shard state
            inherits the same integrity checks.

        Raises
        ------
        repro.exceptions.SerializationError
            If any shard state cannot be serialized.
        repro.exceptions.RecoveryError
            On a degraded service: the disabled shards' state is gone,
            so a bundle written now could never restore the full
            population — rebuild the service before checkpointing.
        """
        self._check_not_poisoned()
        if self._disabled:
            names = ", ".join(str(index) for index in sorted(self._disabled))
            raise RecoveryError(
                f"cannot checkpoint a degraded service: shard(s) {names} are "
                "disabled and their state is unrecoverable; rebuild the "
                "service (restore from the last complete bundle) first"
            )
        self._drain()
        shard_blobs: dict = {}
        for index, blob in enumerate(self._executor.checkpoint_blobs()):
            shard_blobs[str(index)] = {
                "bundle": np.frombuffer(blob, dtype=np.uint8)
            }
        state = {"shards": shard_blobs}
        if self._boundaries is not None:
            state["boundaries"] = np.asarray(self._boundaries, dtype=np.int64)
            state["shard_of"] = np.asarray(self._shard_of, dtype=np.int64)
            state["active"] = np.asarray(self._active, dtype=bool)
        write_bundle(
            path,
            kind="sharded",
            config={"algorithm": self.algorithm, "n_shards": self.n_shards},
            state=state,
            # The shard blobs are complete bundles (already compressed);
            # deflating them again would only burn CPU.
            compress_arrays=False,
        )

    @classmethod
    def restore(
        cls, path, *, executor: str | None = None, policy=None
    ) -> "ShardedService":
        """Resume a service from a :meth:`checkpoint` bundle.

        Parameters
        ----------
        path:
            Bundle file path or readable binary file object.
        executor:
            Shard-stepping strategy for the restored service; ``None``
            reads ``$REPRO_SHARD_EXECUTOR``, falling back to serial.
            Checkpoints are strategy-agnostic, so a bundle written under
            one executor restores under any other.
        policy:
            Optional :class:`~repro.serve.policy.RetryPolicy` carrying
            the worker RPC timeout for the restored service.

        Returns
        -------
        ShardedService
            A service whose future rounds and answers are byte-identical
            to the uninterrupted one's.

        Raises
        ------
        repro.exceptions.SerializationError
            If the bundle (or any nested shard bundle) is corrupt,
            tampered with, or version-mismatched.
        """
        config, state = read_bundle(path, kind="sharded")
        try:
            algorithm = str(config["algorithm"])
            n_shards = int(config["n_shards"])
            shard_blobs = dict(state["shards"])
            shard_keys = sorted(int(k) for k in shard_blobs)
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid sharded bundle: {exc}") from exc
        if n_shards < 1:
            raise SerializationError(
                f"sharded bundle declares n_shards={n_shards}; must be >= 1"
            )
        if shard_keys != list(range(n_shards)):
            raise SerializationError(
                f"sharded bundle must hold shards 0..{n_shards - 1}, "
                f"got {sorted(shard_blobs)}"
            )
        shards = []
        for index in range(n_shards):
            try:
                blob = np.asarray(shard_blobs[str(index)]["bundle"], dtype=np.uint8)
            except (KeyError, TypeError, ValueError) as exc:
                raise SerializationError(
                    f"invalid shard entry {index}: {exc}"
                ) from exc
            shards.append(StreamingSynthesizer.restore(io.BytesIO(blob.tobytes())))
        # Cross-shard consistency: the nested bundles are individually
        # checksummed, but nothing stops a (buggy or foreign) writer from
        # combining shards that never belonged together — fail closed
        # here rather than crash or serve desynced merges later.
        for index, shard in enumerate(shards):
            if shard.algorithm != algorithm:
                raise SerializationError(
                    f"shard {index} runs algorithm {shard.algorithm!r} but the "
                    f"service bundle declares {algorithm!r}"
                )
        clocks = {shard.t for shard in shards}
        if len(clocks) > 1:
            raise SerializationError(
                f"shard clocks are desynchronized: {[s.t for s in shards]}"
            )
        horizons = {shard.horizon for shard in shards}
        if len(horizons) > 1:
            raise SerializationError(
                f"shard horizons disagree: {[s.horizon for s in shards]}"
            )
        boundaries = None
        shard_of = None
        active = None
        if next(iter(clocks)) > 0 and "boundaries" not in state:
            raise SerializationError(
                "sharded bundle has fitted shards (t > 0) but no shard "
                "assignment boundaries"
            )
        if "boundaries" in state:
            boundaries = np.asarray(state["boundaries"], dtype=np.int64)
            if boundaries.shape != (n_shards + 1,):
                raise SerializationError(
                    f"boundaries have shape {boundaries.shape}, "
                    f"expected ({n_shards + 1},)"
                )
            if boundaries[0] != 0 or (np.diff(boundaries) < 0).any():
                raise SerializationError(
                    f"assignment boundaries {boundaries.tolist()} must start "
                    "at 0 and be non-decreasing"
                )
            sizes = np.diff(boundaries)
            populations = [shard.synthesizer._n for shard in shards]
            if any(
                n is not None and n != int(size)
                for n, size in zip(populations, sizes)
            ):
                raise SerializationError(
                    f"shard populations {populations} disagree with the "
                    f"assignment boundaries {boundaries.tolist()}"
                )
            try:
                shard_of = np.asarray(state["shard_of"], dtype=np.int64)
                active = np.asarray(state["active"], dtype=bool)
            except KeyError as exc:
                raise SerializationError(
                    f"sharded bundle is missing the churn assignment: {exc}"
                ) from exc
            if shard_of.shape != active.shape or shard_of.ndim != 1:
                raise SerializationError(
                    "shard_of and active must be equal-length 1-D arrays, got "
                    f"{shard_of.shape} and {active.shape}"
                )
            if shard_of.size and (
                shard_of.min() < 0 or shard_of.max() >= n_shards
            ):
                raise SerializationError(
                    f"shard_of entries must lie in [0, {n_shards - 1}]"
                )
            member_counts = np.bincount(shard_of, minlength=n_shards)[:n_shards]
            ever_counts = [
                shard.synthesizer._ledger.n_ever if shard.synthesizer._ledger else 0
                for shard in shards
            ]
            if member_counts.tolist() != ever_counts:
                raise SerializationError(
                    f"service-side membership {member_counts.tolist()} disagrees "
                    f"with the shards' lifespan tables {ever_counts}"
                )
        return cls._from_shards(
            shards,
            algorithm,
            boundaries,
            shard_of,
            active,
            executor=executor,
            policy=policy,
        )

    def close(self) -> None:
        """Join in-flight rounds and release executor resources.

        Required for the ``"process"`` strategy (worker processes and
        shared-memory segments); a no-op for serial.  Idempotent, and
        also invoked by a finalizer as a safety net — but call it
        explicitly (or use the service as a context manager) to bound
        resource lifetime deterministically.
        """
        try:
            self._drain()
        except Exception:
            pass  # a poisoned in-flight round must not block teardown
        self._executor.close()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        fitted = self._boundaries is not None
        return (
            f"ShardedService(algorithm={self.algorithm!r}, K={self.n_shards}, "
            f"executor={self.executor!r}, t={self.t}, "
            f"n={self.n if fitted else '?'})"
        )
