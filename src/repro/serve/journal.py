"""Append-only, checksummed, fsync'd release journal.

The journal is the DP-critical half of crash recovery.  A continual-
release curator may publish **one** release per round; restarting a
crashed service naively — re-ingesting a round and drawing *fresh*
noise for it — would publish two different releases for the same round
and silently break the privacy analysis.  The
:class:`~repro.serve.supervisor.SupervisedService` therefore writes one
:class:`JournalRecord` per round — the round's input column and churn,
the per-shard state fingerprints, the zCDP spend, and the published
probe answers — to this journal **before** the round is acknowledged to
the caller.  On recovery, the journal tail (everything after the latest
checkpoint) is *replayed*: the recorded inputs are fed to the restored
service, whose checkpoint carried every RNG bit-generator state, so the
replay consumes **the identical random bits** the original run did — no
fresh noise is ever drawn for an already-released round — and each
replayed round's fingerprint is asserted against the journaled one, so
a replay that would diverge fails closed with
:class:`~repro.exceptions.RecoveryError` instead of re-releasing.

On-disk format (version 1)::

    file    := frame*
    frame   := magic(4) = b"RJL1"
             | payload_length  uint64 LE
             | payload
             | sha256(payload) (32 bytes)
    payload := meta_length uint32 LE | meta JSON (UTF-8) | column bytes

Column bytes are stored in the compact encoding named by
``meta["encoding"]`` — ``"bits"`` (bit-packed, for binary columns),
``"u1"`` (one byte per entry, for small category codes), or ``"raw"``
— while ``meta["dtype"]`` keeps the logical dtype, so decoding returns
the exact array that was appended.  The append path hashes and fsyncs
every payload, so compactness is what keeps journaling off the serving
critical path (a bit column costs 1/64th of its int64 image).

The first frame is a header (``meta = {"format": "repro-journal", ...}``,
empty column).  Appends are flushed and ``fsync``'d before returning, so
an acknowledged round is durable.  A **torn tail** — a final frame cut
short by a crash mid-append — is the expected crash artifact: the round
it carried was never acknowledged, so readers drop it (reported via
``torn_tail``).  Corruption *before* the tail means acknowledged rounds
would be lost, so it fails closed with
:class:`~repro.exceptions.SerializationError`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import struct
import tempfile

import numpy as np

from repro.exceptions import SerializationError

__all__ = ["JournalRecord", "ReleaseJournal", "JOURNAL_MAGIC", "JOURNAL_VERSION"]

#: Frame magic for journal format 1.
JOURNAL_MAGIC = b"RJL1"

#: Current journal format version.
JOURNAL_VERSION = 1

_LENGTH = struct.Struct("<Q")
_META_LENGTH = struct.Struct("<I")
_DIGEST_SIZE = hashlib.sha256().digest_size

# Non-finite floats (rho=inf runs journal zcdp_spent=0.0, but answers on
# empty shards can be nan) travel as string markers, as in the
# checkpoint manifest format.
_NONFINITE = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


def _encode_float(value: float):
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return {"__nonfinite__": "nan"}
        return {"__nonfinite__": "inf" if value > 0 else "-inf"}
    return value


def _decode_float(value):
    if isinstance(value, dict):
        try:
            return _NONFINITE[value["__nonfinite__"]]
        except (KeyError, TypeError) as exc:
            raise SerializationError(
                f"invalid non-finite marker in journal: {value!r}"
            ) from exc
    return value


def _encode_column(column: np.ndarray) -> tuple[str, np.ndarray]:
    """Pick the cheapest lossless on-disk encoding for a round column.

    The journal is on the acknowledgement path of every round, so the
    durable append must stay cheap: the dominant costs are hashing and
    fsync-ing the payload, both linear in its size.  Report columns are
    bits (the paper's model) or small category codes carried in wide
    integer dtypes, so the raw ``tobytes()`` image is almost entirely
    zero padding.  Bit-pack binary columns (64x smaller than int64) and
    downcast small non-negative ints to one byte (8x); the *logical*
    dtype still travels in the frame meta, so decoding reproduces the
    exact original array — values and dtype — for replay.
    """
    if column.dtype.kind == "b":
        return "bits", np.packbits(column)
    if column.dtype.kind in "iu" and column.size:
        lo = int(column.min())
        hi = int(column.max())
        if lo >= 0 and hi <= 1:
            return "bits", np.packbits(column.astype(np.uint8, copy=False))
        if lo >= 0 and hi <= 255 and column.dtype.itemsize > 1:
            return "u1", column.astype(np.uint8)
    return "raw", column


def _decode_column(raw: bytes, dtype: np.dtype, n: int, encoding: str) -> np.ndarray:
    if encoding == "raw":
        return np.frombuffer(raw, dtype=dtype, count=n).copy()
    if encoding == "bits":
        packed = np.frombuffer(raw, dtype=np.uint8, count=-(-n // 8))
        return np.unpackbits(packed, count=n).astype(dtype)
    if encoding == "u1":
        return np.frombuffer(raw, dtype=np.uint8, count=n).astype(dtype)
    raise SerializationError(f"unknown journal column encoding {encoding!r}")


@dataclasses.dataclass(frozen=True)
class JournalRecord:
    """One published round, as persisted in the release journal.

    Attributes
    ----------
    round:
        1-based round number the record publishes.
    column:
        The round's input report vector over the then-active population
        (ascending global id order, entrants last) — exactly what was
        passed to ``observe``, so recovery can replay it.
    entrants:
        Number of individuals entering in this round.
    exits:
        Global ids that departed as of this round.
    fingerprints:
        Per-shard :func:`~repro.serve.checkpoint.state_fingerprint`
        digests *after* the round was ingested — the byte-identity
        anchor recovery replay is verified against.
    zcdp_spent:
        Service-wide zCDP spend after the round (monotone non-decreasing
        across the journal; recovery asserts it never rewinds).
    answers:
        Published probe-query answers for the round, keyed by probe
        label (empty when the supervisor has no probe queries).
    """

    round: int
    column: np.ndarray
    entrants: int = 0
    exits: tuple[int, ...] = ()
    fingerprints: tuple[str, ...] = ()
    zcdp_spent: float = 0.0
    answers: dict = dataclasses.field(default_factory=dict)

    def payload(self) -> bytes:
        """Serialize to one frame payload (meta JSON + encoded column bytes)."""
        column = np.ascontiguousarray(np.asarray(self.column))
        if column.ndim != 1:
            raise SerializationError(
                f"journal columns must be 1-D, got shape {column.shape}"
            )
        encoding, body = _encode_column(column)
        meta = {
            "round": int(self.round),
            "entrants": int(self.entrants),
            "exits": [int(e) for e in self.exits],
            "fingerprints": list(self.fingerprints),
            "zcdp_spent": _encode_float(float(self.zcdp_spent)),
            "answers": {
                str(key): _encode_float(float(value))
                for key, value in self.answers.items()
            },
            "dtype": column.dtype.str,
            "n": int(column.shape[0]),
            "encoding": encoding,
        }
        try:
            meta_bytes = json.dumps(
                meta, sort_keys=True, separators=(",", ":"), allow_nan=False
            ).encode()
        except (TypeError, ValueError) as exc:
            raise SerializationError(
                f"journal record is not JSON-serializable: {exc}"
            ) from exc
        return _META_LENGTH.pack(len(meta_bytes)) + meta_bytes + body.tobytes()

    @classmethod
    def from_payload(cls, payload: bytes) -> "JournalRecord":
        """Decode one frame payload back into a record."""
        try:
            (meta_length,) = _META_LENGTH.unpack_from(payload)
            meta = json.loads(
                payload[_META_LENGTH.size: _META_LENGTH.size + meta_length]
            )
            dtype = np.dtype(meta["dtype"])
            raw = payload[_META_LENGTH.size + meta_length:]
            column = _decode_column(
                raw, dtype, int(meta["n"]), str(meta.get("encoding", "raw"))
            )
            return cls(
                round=int(meta["round"]),
                column=column,
                entrants=int(meta["entrants"]),
                exits=tuple(int(e) for e in meta["exits"]),
                fingerprints=tuple(str(f) for f in meta["fingerprints"]),
                zcdp_spent=float(_decode_float(meta["zcdp_spent"])),
                answers={
                    str(key): float(_decode_float(value))
                    for key, value in dict(meta["answers"]).items()
                },
            )
        except SerializationError:
            raise
        except (KeyError, TypeError, ValueError, struct.error,
                json.JSONDecodeError) as exc:
            raise SerializationError(
                f"journal record payload is malformed: {exc}"
            ) from exc


def _frame(payload: bytes) -> bytes:
    return (
        JOURNAL_MAGIC
        + _LENGTH.pack(len(payload))
        + payload
        + hashlib.sha256(payload).digest()
    )


class ReleaseJournal:
    """Durable write-ahead log of published rounds.

    Parameters
    ----------
    path:
        Journal file path.  An existing journal is validated and
        appended to; a missing one is created with a header frame.
    fsync:
        Force every append to stable storage before returning (default).
        Disable only for tests/benchmarks that measure the in-memory
        path — an acknowledged round must survive a power loss in
        production.

    Raises
    ------
    repro.exceptions.SerializationError
        If an existing file at ``path`` is not a valid journal (wrong
        magic, corrupt non-tail frame, bad header).
    """

    def __init__(self, path, *, fsync: bool = True):
        self._path = os.fspath(path)
        self._fsync = bool(fsync)
        self._handle = None
        if os.path.exists(self._path):
            records, torn, base = self._scan(self._path)
            self.torn_tail = torn
            self._base_round = base
            self._last_round = records[-1].round if records else base
            if torn:
                # Drop the torn tail on disk too, so later appends don't
                # bury unparseable bytes mid-file (which would read as
                # fail-closed corruption instead of a clean tail).
                self._rewrite(records, base)
        else:
            self.torn_tail = False
            self._base_round = 0
            self._last_round = 0
            self._rewrite([], 0)

    @property
    def path(self) -> str:
        """The journal's file path."""
        return self._path

    @property
    def last_round(self) -> int:
        """Highest round durably journaled so far (0 when empty)."""
        return self._last_round

    @property
    def base_round(self) -> int:
        """Highest round dropped by :meth:`compact` (0 when uncompacted).

        Records for rounds ``base_round + 1 .. last_round`` are on disk;
        everything at or below ``base_round`` is covered by a checkpoint.
        """
        return self._base_round

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def _header_payload(self, base_round: int) -> bytes:
        meta = {
            "format": "repro-journal",
            "version": JOURNAL_VERSION,
            "base_round": int(base_round),
            "dtype": "<i8",
            "n": 0,
        }
        meta_bytes = json.dumps(
            meta, sort_keys=True, separators=(",", ":")
        ).encode()
        return _META_LENGTH.pack(len(meta_bytes)) + meta_bytes

    def _open(self):
        if self._handle is None:
            self._handle = open(self._path, "ab")
        return self._handle

    def append(self, record: JournalRecord) -> None:
        """Durably append one published round.

        The frame is written, flushed, and (by default) ``fsync``'d
        before this method returns — the caller may acknowledge the
        round to its client as soon as ``append`` succeeds.

        Parameters
        ----------
        record:
            The round to journal; ``record.round`` must be exactly
            ``last_round + 1`` (rounds are journaled in order, no gaps).

        Raises
        ------
        repro.exceptions.SerializationError
            On an out-of-order round or an unserializable record.
        OSError
            If the write or fsync fails (disk full, file system error);
            the caller must treat the round as unpublished.
        """
        if record.round != self._last_round + 1:
            raise SerializationError(
                f"journal rounds must be contiguous: expected round "
                f"{self._last_round + 1}, got {record.round}"
            )
        handle = self._open()
        handle.write(_frame(record.payload()))
        handle.flush()
        if self._fsync:
            os.fsync(handle.fileno())
        self._last_round = record.round

    def compact(self, upto_round: int) -> None:
        """Drop records at or before ``upto_round`` (checkpointed rounds).

        Rewrites the journal atomically (tmp + fsync + rename), so the
        file only ever holds the *tail* recovery actually needs: the
        rounds after the latest durable checkpoint.

        Parameters
        ----------
        upto_round:
            Highest round now covered by a checkpoint; records up to and
            including it are removed.  The journal remembers it as its
            :attr:`base_round`, so ``last_round`` and the contiguity
            check survive compaction.
        """
        upto_round = int(upto_round)
        kept = [record for record in self.records() if record.round > upto_round]
        self._rewrite(kept, max(self._base_round, upto_round))

    def _rewrite(self, records: list[JournalRecord], base_round: int) -> None:
        """Atomically replace the journal with a header + ``records``."""
        self.close()
        directory = os.path.dirname(self._path) or "."
        fd, temp_path = tempfile.mkstemp(prefix=".journal-", dir=directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_frame(self._header_payload(base_round)))
                for record in records:
                    handle.write(_frame(record.payload()))
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())
            os.replace(temp_path, self._path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self._base_round = int(base_round)
        self._last_round = records[-1].round if records else int(base_round)
        self.torn_tail = False

    def close(self) -> None:
        """Close the append handle (reopened transparently on next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ReleaseJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def records(self) -> list[JournalRecord]:
        """All durably journaled rounds, in round order.

        A torn final frame (crash mid-append) is dropped — the round it
        carried was never acknowledged.  Corruption anywhere *before*
        the tail raises: acknowledged rounds would be lost.

        Returns
        -------
        list of JournalRecord
            The journaled rounds (may be empty).

        Raises
        ------
        repro.exceptions.SerializationError
            On non-tail corruption, a bad header, or out-of-order
            rounds.
        """
        self.close()
        records, torn, base = self._scan(self._path)
        self.torn_tail = torn
        self._base_round = base
        self._last_round = records[-1].round if records else base
        if torn:
            # Self-heal: drop the torn bytes on disk, otherwise a later
            # append would land *after* them and turn a harmless torn
            # tail into fail-closed mid-journal corruption.
            self._rewrite(records, base)
            self.torn_tail = True
        return records

    @classmethod
    def _scan(cls, path) -> tuple[list[JournalRecord], bool, int]:
        """Parse a journal file into ``(records, torn_tail, base_round)``."""
        with open(path, "rb") as handle:
            data = handle.read()
        offset = 0
        payloads: list[bytes] = []
        torn = False
        size = len(data)
        while offset < size:
            frame_start = offset
            magic = data[offset: offset + 4]
            if magic != JOURNAL_MAGIC:
                if data.find(JOURNAL_MAGIC, frame_start + 1) != -1:
                    raise SerializationError(
                        f"journal is corrupt at byte {frame_start}: bad frame "
                        "magic with valid frames following — acknowledged "
                        "rounds would be lost; refusing to recover from a "
                        "damaged journal"
                    )
                torn = True
                break
            offset += 4
            if offset + _LENGTH.size > size:
                torn = True
                break
            (length,) = _LENGTH.unpack_from(data, offset)
            offset += _LENGTH.size
            end = offset + length + _DIGEST_SIZE
            if end > size:
                # The declared payload runs past EOF: the append was cut
                # short.  Anything *after* where this frame should end
                # cannot exist, so this is always the tail.
                torn = True
                break
            payload = data[offset: offset + length]
            digest = data[offset + length: end]
            if hashlib.sha256(payload).digest() != digest:
                if data.find(JOURNAL_MAGIC, end) != -1:
                    raise SerializationError(
                        f"journal frame at byte {frame_start} fails its "
                        "checksum with valid frames following — the journal "
                        "was corrupted in place; refusing to recover from it"
                    )
                torn = True
                break
            payloads.append(payload)
            offset = end
        if not payloads:
            raise SerializationError(
                f"{os.fspath(path)!r} is not a repro release journal "
                "(missing header frame)"
            )
        header = payloads[0]
        try:
            (meta_length,) = _META_LENGTH.unpack_from(header)
            header_meta = json.loads(
                header[_META_LENGTH.size: _META_LENGTH.size + meta_length]
            )
        except (struct.error, json.JSONDecodeError, ValueError) as exc:
            raise SerializationError(f"journal header is malformed: {exc}") from exc
        if header_meta.get("format") != "repro-journal":
            raise SerializationError(
                f"not a repro release journal (format={header_meta.get('format')!r})"
            )
        if header_meta.get("version") != JOURNAL_VERSION:
            raise SerializationError(
                f"unsupported journal version {header_meta.get('version')!r}; "
                f"this build reads version {JOURNAL_VERSION}"
            )
        try:
            base_round = int(header_meta.get("base_round", 0))
        except (TypeError, ValueError) as exc:
            raise SerializationError(
                f"journal header base_round is malformed: {exc}"
            ) from exc
        records = [JournalRecord.from_payload(payload) for payload in payloads[1:]]
        if records and records[0].round != base_round + 1:
            raise SerializationError(
                f"journal starts at round {records[0].round} but its header "
                f"declares base_round={base_round}; rounds "
                f"{base_round + 1}..{records[0].round - 1} are missing"
            )
        for previous, current in zip(records, records[1:]):
            if current.round != previous.round + 1:
                raise SerializationError(
                    f"journal rounds are not contiguous: {previous.round} "
                    f"followed by {current.round}"
                )
        return records, torn, base_round

    def __repr__(self) -> str:
        return (
            f"ReleaseJournal(path={self._path!r}, last_round={self._last_round}, "
            f"fsync={self._fsync})"
        )


def _read_journal_bytes(blob: bytes) -> list[JournalRecord]:
    """Parse journal *bytes* (testing helper used by the fault harness)."""
    with tempfile.NamedTemporaryFile(suffix=".journal", delete=False) as handle:
        handle.write(blob)
        temp_path = handle.name
    try:
        records, _, _ = ReleaseJournal._scan(temp_path)
        return records
    finally:
        os.unlink(temp_path)
