"""Shard-stepping strategies: serial, thread-pool, and process-parallel.

A :class:`ShardExecutor` owns the per-shard
:class:`~repro.serve.streaming.StreamingSynthesizer` instances of a
:class:`~repro.serve.sharded.ShardedService` and answers one question:
*how* does a round fan out across the ``K`` shards?

``"serial"``
    Today's behavior, bit for bit: shards advance one after another in
    the calling thread, stopping at the first failure.

``"thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor` advances all
    shards concurrently.  NumPy releases the GIL inside its reductions
    and the discrete-Gaussian samplers are array code, so shards overlap
    meaningfully; results are joined in shard order, which keeps every
    output byte-identical to serial (per-shard RNGs are independent
    spawned streams, so execution order cannot matter).

``"process"``
    One **persistent forked worker per shard**.  Each shard object lives
    in its worker from fork time on — nothing is pickled, ever — and the
    parent talks to it over a :func:`multiprocessing.Pipe` with small
    tagged messages.  Round columns travel through **double-buffered
    shared-memory staging**: the parent writes each round's per-shard
    slices into one of two :class:`multiprocessing.shared_memory`
    segments (selected by round parity) and sends only offsets, so a
    10M-row column crosses the process boundary without serialization.
    Two rounds may be in flight at once (the parity buffer is only
    reused after its previous round is acknowledged), which is what
    makes :meth:`~repro.serve.sharded.ShardedService.observe_async`
    overlap staging of round ``r+1`` with computation of round ``r``.

All three strategies produce byte-identical releases, ledgers, and
checkpoint bundles; ``tests/serve/test_executors.py`` locks that in.
The process strategy requires the ``fork`` start method (Linux, macOS
with the default ``spawn`` overridden) because forking is what moves
the shard state into the workers for free.
"""

from __future__ import annotations

import io
import multiprocessing as mp
import os
import weakref
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.exceptions import ConfigurationError, ConsistencyError
from repro.queries.plan import decode_workload, encode_workload, scalar_answer_grid
from repro.types import AttributeFrame

__all__ = [
    "EXECUTOR_STRATEGIES",
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "RoundTicket",
    "make_executor",
    "merge_weight",
]


def _tag_shard(exc: BaseException, index: int) -> BaseException:
    """Best-effort: record which shard raised ``exc`` (for supervision)."""
    try:
        if getattr(exc, "shard_index", None) is None:
            exc.shard_index = index
    except Exception:  # pragma: no cover - exotic __slots__ exceptions
        pass
    return exc

#: Recognized ``executor=`` strategy names, in documentation order.
EXECUTOR_STRATEGIES = ("serial", "thread", "process")

#: Environment override for the default strategy (used when the service
#: is constructed without an explicit ``executor=``).
EXECUTOR_ENV = "REPRO_SHARD_EXECUTOR"


def _kwargs_key(kwargs: dict):
    """Hashable form of an answer-kwargs dict, or ``None`` if unhashable."""
    try:
        key = tuple(sorted(kwargs.items()))
        hash(key)
    except TypeError:
        return None
    return key


def _release_grid(release, queries, times, kwargs: dict) -> np.ndarray:
    """One release's ``(queries, times)`` answer grid, kwargs forwarded.

    Uses the release's compiled ``answer_batch`` when it has one (every
    built-in release does), falling back to the scalar loop — both are
    bit-identical with per-cell ``answer`` calls by contract.
    """
    batch = getattr(release, "answer_batch", None)
    if batch is None:
        return scalar_answer_grid(release, queries, times, **kwargs)
    return np.asarray(batch(list(queries), [int(t) for t in times], **kwargs))


def merge_weight(algorithm: str, release, t: int, **kwargs) -> float:
    """Population weight of one shard's answers at round ``t``.

    Each weight equals the denominator of that shard's answer at ``t``,
    so the service's weighted average is exactly the fraction over the
    union of shard populations — also under churn, where the shard
    populations move round by round.  Module-level (not a service
    method) so process workers can compute their own ``(weight,
    answer)`` pairs without shipping release objects to the parent.
    """
    if algorithm == "cumulative":
        return release.threshold_count(0, t)
    # Debiased window answers are fractions of the real sub-population;
    # biased ones are fractions of the padded synthetic population.
    if kwargs.get("debias", True):
        return release.population(t)
    return release.synthetic_population(t)


class RoundTicket:
    """Handle for one in-flight round; :meth:`wait` joins it.

    Parameters
    ----------
    waiter:
        Callable performing the join; returns the number of shards that
        completed the round and raises the first per-shard failure (in
        shard order).  Called at most once; the outcome is cached so
        ``wait`` is idempotent.
    """

    def __init__(self, waiter=None):
        self._waiter = waiter
        self._done = waiter is None
        self._error: BaseException | None = None
        #: Shards that completed the round (valid once waited).
        self.completed = 0

    def wait(self) -> None:
        """Block until the round is fully ingested; re-raise any failure."""
        if not self._done:
            self._done = True
            waiter, self._waiter = self._waiter, None
            try:
                self.completed = waiter()
            except BaseException as exc:
                self._error = exc
        if self._error is not None:
            raise self._error

    @property
    def done(self) -> bool:
        """True once the round has been joined (successfully or not)."""
        return self._done


class ShardExecutor:
    """Common surface of the three stepping strategies.

    Subclasses own the shard synthesizers; the sharded service goes
    through this interface for everything that touches shard state, so
    the parallelism strategy is invisible above it.

    Parameters
    ----------
    shards:
        The per-shard :class:`~repro.serve.streaming.StreamingSynthesizer`
        instances, in shard order.  The executor takes ownership: the
        process strategy moves them into forked workers, after which the
        caller's references are stale.
    algorithm:
        The service's algorithm tag (``"cumulative"`` …), used to pick
        the per-shard merge weight when answering queries.
    policy:
        Optional :class:`~repro.serve.policy.RetryPolicy` supplying the
        per-request RPC timeout used by the process strategy; ``None``
        keeps the pre-supervision block-forever behavior.
    """

    strategy: str = "?"

    def __init__(self, shards: list, algorithm: str, policy=None):
        self._shards = list(shards)
        self._algorithm = str(algorithm)
        self._policy = policy
        self._disabled: set[int] = set()
        # Merge-weight memo: population denominators are pure functions of
        # shard state, so they are computed once per (shard, t, kwargs)
        # between rounds instead of on every answer call.  Cleared whenever
        # a round dispatches (shard state advances).
        self._weight_memo: dict = {}

    @property
    def n_shards(self) -> int:
        """Number of shards this executor steps."""
        return len(self._shards)

    @property
    def disabled(self) -> frozenset:
        """Indices of shards excluded from stepping (degraded mode)."""
        return frozenset(self._disabled)

    def disable(self, index: int) -> None:
        """Exclude shard ``index`` from all further operations.

        Used by degraded serving: the shard's jobs are dropped at
        dispatch and its slots in ``answer``/``ledgers``/``fingerprints``
        results become ``None``.  Idempotent.
        """
        if not 0 <= index < self.n_shards:
            raise ConfigurationError(
                f"shard index must lie in [0, {self.n_shards}), got {index}"
            )
        self._disabled.add(int(index))

    def worker_health(self) -> list[bool]:
        """Per-shard liveness, in shard order.

        In-process strategies report ``True`` for every non-disabled
        shard; the process strategy additionally checks that each worker
        process is alive.
        """
        return [index not in self._disabled for index in range(self.n_shards)]

    def fingerprints(self) -> list:
        """Per-shard state fingerprints (``None`` for disabled shards)."""
        raise NotImplementedError

    def ping(self) -> list[bool]:
        """Round-trip liveness probe; ``worker_health`` plus an RPC echo.

        Must only be called with no rounds in flight (the process
        strategy's pipe protocol is strict request-response).
        """
        return self.worker_health()

    @property
    def shards(self) -> tuple:
        """The live shard objects (strategies that keep them in-process)."""
        return tuple(self._shards)

    def dispatch_round(self, jobs: list) -> RoundTicket:
        """Start ingesting one round; ``jobs`` is per-shard
        ``(column, entrants, exits)``.  Returns a ticket to join."""
        raise NotImplementedError

    def answer(self, query, t: int, kwargs: dict) -> list[tuple[float, float]]:
        """Per-shard ``(weight, answer)`` pairs at round ``t``, shard order."""
        raise NotImplementedError

    def answer_batch(self, queries, times, kwargs: dict) -> list:
        """Per-shard ``(weights, grid)`` pairs for a whole workload.

        ``weights`` is the length-``len(times)`` merge-weight vector and
        ``grid`` the shard's ``(len(queries), len(times))`` answer grid;
        disabled shards contribute ``None``.  One call ships the entire
        workload to every shard — under the process strategy that is one
        RPC per worker instead of one per ``(query, time)`` cell.
        """
        raise NotImplementedError

    def ledgers(self) -> list[tuple[float, float]]:
        """Per-shard ``(spent, remaining)`` zCDP, in shard order."""
        raise NotImplementedError

    def checkpoint_blobs(self) -> list[bytes]:
        """One serialized streaming bundle per shard, in shard order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release strategy resources (workers, shared memory).  Idempotent."""

    # -- shared in-process implementations ------------------------------

    def _shard_weight(self, shard, t: int, kwargs: dict) -> float:
        """Memoized merge weight of one shard at round ``t``."""
        options = _kwargs_key(kwargs)
        if options is None:
            return merge_weight(self._algorithm, shard.release, t, **kwargs)
        key = (id(shard), int(t), options)
        weight = self._weight_memo.get(key)
        if weight is None:
            weight = merge_weight(self._algorithm, shard.release, t, **kwargs)
            self._weight_memo[key] = weight
        return weight

    def _answer_one(self, shard, query, t: int, kwargs: dict) -> tuple[float, float]:
        weight = self._shard_weight(shard, t, kwargs)
        return weight, shard.release.answer(query, t, **kwargs)

    def _batch_one(self, shard, queries, times, kwargs: dict):
        release = shard.release
        weights = np.asarray(
            [self._shard_weight(shard, t, kwargs) for t in times],
            dtype=np.float64,
        )
        return weights, _release_grid(release, queries, times, kwargs)

    def _ledger_one(self, shard) -> tuple[float, float]:
        accountant = shard.synthesizer.accountant
        if accountant is None:
            return (0.0, float("inf"))
        return (accountant.spent, accountant.remaining)

    def _blob_one(self, shard) -> bytes:
        buffer = io.BytesIO()
        shard.checkpoint(buffer)
        return buffer.getvalue()

    def _fingerprint_one(self, shard) -> str:
        return shard.fingerprint()


class SerialShardExecutor(ShardExecutor):
    """Shards advance one after another in the calling thread.

    The reference strategy: it stops at the first shard failure (later
    shards never ingest the round), exactly like the pre-executor
    service loop.
    """

    strategy = "serial"

    def dispatch_round(self, jobs: list) -> RoundTicket:
        self._weight_memo.clear()

        def run() -> int:
            advanced = 0
            for index, (shard, (column, entrants, exits)) in enumerate(
                zip(self._shards, jobs)
            ):
                if index in self._disabled:
                    continue
                try:
                    shard.observe(column, entrants=entrants, exits=exits)
                except Exception as exc:
                    raise _tag_shard(exc, index)
                advanced += 1
            return advanced

        ticket = RoundTicket(run)
        # Serial ingestion is synchronous: the round is done (or failed)
        # before dispatch returns; wait() only replays the outcome.
        try:
            ticket.wait()
        except Exception:
            pass
        return ticket

    def _map_live(self, fn, *args) -> list:
        return [
            None if index in self._disabled else fn(shard, *args)
            for index, shard in enumerate(self._shards)
        ]

    def answer(self, query, t: int, kwargs: dict) -> list:
        return self._map_live(self._answer_one, query, t, kwargs)

    def answer_batch(self, queries, times, kwargs: dict) -> list:
        return self._map_live(self._batch_one, queries, times, kwargs)

    def ledgers(self) -> list:
        return self._map_live(self._ledger_one)

    def checkpoint_blobs(self) -> list:
        return self._map_live(self._blob_one)

    def fingerprints(self) -> list:
        return self._map_live(self._fingerprint_one)


class ThreadShardExecutor(ShardExecutor):
    """Shards advance concurrently on a thread pool.

    Every shard attempts the round (unlike serial's stop-at-first-
    failure); failures are joined in shard order, so the *reported*
    error is deterministic even though execution is not.  Outputs are
    byte-identical to serial because each shard's RNG is an independent
    spawned stream — no cross-shard ordering can influence any draw.
    """

    strategy = "thread"

    def __init__(self, shards: list, algorithm: str, policy=None):
        super().__init__(shards, algorithm, policy)
        workers = min(len(self._shards), os.cpu_count() or 1) or 1
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )

    def _submit_live(self, fn, *args) -> list:
        """One future per live shard, ``None`` placeholders for disabled."""
        return [
            None
            if index in self._disabled
            else self._pool.submit(fn, shard, *args)
            for index, shard in enumerate(self._shards)
        ]

    def _join(self, futures) -> list:
        results, first_error = [], None
        for index, future in enumerate(futures):
            if future is None:
                results.append(None)
                continue
            try:
                results.append(future.result())
            except Exception as exc:
                if first_error is None:
                    first_error = _tag_shard(exc, index)
        if first_error is not None:
            raise first_error
        return results

    def dispatch_round(self, jobs: list) -> RoundTicket:
        self._weight_memo.clear()
        futures = [
            None
            if index in self._disabled
            else self._pool.submit(
                shard.observe, column, entrants=entrants, exits=exits
            )
            for index, (shard, (column, entrants, exits)) in enumerate(
                zip(self._shards, jobs)
            )
        ]

        def join() -> int:
            advanced = 0
            first_error = None
            for index, future in enumerate(futures):
                if future is None:
                    continue
                try:
                    future.result()
                    advanced += 1
                except Exception as exc:
                    if first_error is None:
                        first_error = _tag_shard(exc, index)
            if first_error is not None:
                raise first_error
            return advanced

        ticket = RoundTicket(join)
        try:
            ticket.wait()
        except Exception:
            pass
        return ticket

    def answer(self, query, t: int, kwargs: dict) -> list:
        return self._join(self._submit_live(self._answer_one, query, t, kwargs))

    def answer_batch(self, queries, times, kwargs: dict) -> list:
        return self._join(self._submit_live(self._batch_one, queries, times, kwargs))

    def ledgers(self) -> list:
        return [
            None if index in self._disabled else self._ledger_one(shard)
            for index, shard in enumerate(self._shards)
        ]

    def checkpoint_blobs(self) -> list:
        return self._join(self._submit_live(self._blob_one))

    def fingerprints(self) -> list:
        return self._join(self._submit_live(self._fingerprint_one))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# Process strategy
# ----------------------------------------------------------------------


def _worker_loop(shard, algorithm: str, conn) -> None:
    """Persistent per-shard worker: serve tagged requests until ``stop``.

    Runs in a forked child, so ``shard`` is this process's private copy
    of the shard synthesizer — the authoritative one from now on.  Every
    request is answered with ``("ok", payload)`` or ``("err", exc)``;
    the worker survives shard-level failures (the parent may still need
    ledger reads from a poisoned service).
    """
    from multiprocessing import shared_memory

    segments: OrderedDict[str, object] = OrderedDict()
    # Worker-side merge-weight memo, mirroring the in-process executors'
    # (see ShardExecutor._shard_weight): cleared whenever the shard
    # advances, so cached denominators never go stale.
    weight_memo: dict = {}

    def shard_weight(t: int, kwargs: dict) -> float:
        options = _kwargs_key(kwargs)
        if options is None:
            return merge_weight(algorithm, shard.release, t, **kwargs)
        key = (int(t), options)
        weight = weight_memo.get(key)
        if weight is None:
            weight = merge_weight(algorithm, shard.release, t, **kwargs)
            weight_memo[key] = weight
        return weight

    def attach(name: str):
        segment = segments.get(name)
        if segment is None:
            # CPython < 3.13 registers even attach-only handles with the
            # resource tracker; the parent owns these segments' lifetime,
            # so a worker registration only produces spurious "leaked
            # shared_memory" noise (or double-unregister errors) at exit.
            # Suppress it for the duration of the attach.
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                segment = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
            segments[name] = segment
        segments.move_to_end(name)
        # Two parity buffers are ever live; anything older was replaced
        # by a grown segment and can be detached.
        while len(segments) > 2:
            segments.popitem(last=False)[1].close()
        return segment

    try:
        while True:
            message = conn.recv()
            tag = message[0]
            try:
                if tag == "observe":
                    _, name, offset, count, dtype, entrants, exits = message
                    if count:
                        segment = attach(name)
                        view = np.ndarray(
                            (count,),
                            dtype=np.dtype(dtype),
                            buffer=segment.buf,
                            offset=offset,
                        )
                        # Private copy: the parent reuses this parity
                        # buffer as soon as the round is acknowledged.
                        column = np.array(view)
                        del view
                    else:
                        column = np.empty(0, dtype=np.dtype(dtype))
                    weight_memo.clear()
                    shard.observe(column, entrants=entrants, exits=exits)
                    conn.send(("ok", None))
                elif tag == "observe_frame":
                    _, name, offset, count, width, dtype, names, entrants, exits = (
                        message
                    )
                    if count:
                        segment = attach(name)
                        view = np.ndarray(
                            (count, width),
                            dtype=np.dtype(dtype),
                            buffer=segment.buf,
                            offset=offset,
                        )
                        matrix = np.array(view)
                        del view
                    else:
                        matrix = np.empty((0, width), dtype=np.dtype(dtype))
                    frame = AttributeFrame(matrix, names)
                    weight_memo.clear()
                    shard.observe(frame, entrants=entrants, exits=exits)
                    conn.send(("ok", None))
                elif tag == "answer":
                    _, query, t, kwargs = message
                    weight = shard_weight(t, kwargs)
                    conn.send(
                        ("ok", (weight, shard.release.answer(query, t, **kwargs)))
                    )
                elif tag == "answer_batch":
                    _, name, offset, size, spec, times, kwargs = message
                    if size:
                        segment = attach(name)
                        view = np.ndarray(
                            (size,),
                            dtype=np.float64,
                            buffer=segment.buf,
                            offset=offset,
                        )
                        # Private copy: the parent may restage the buffer
                        # for the next round as soon as we acknowledge.
                        flat = np.array(view)
                        del view
                    else:
                        flat = np.empty(0, dtype=np.float64)
                    queries = decode_workload(spec, flat)
                    weights = np.asarray(
                        [shard_weight(t, kwargs) for t in times],
                        dtype=np.float64,
                    )
                    grid = _release_grid(shard.release, queries, times, kwargs)
                    conn.send(("ok", (weights, grid)))
                elif tag == "ledger":
                    accountant = shard.synthesizer.accountant
                    if accountant is None:
                        conn.send(("ok", (0.0, float("inf"))))
                    else:
                        conn.send(("ok", (accountant.spent, accountant.remaining)))
                elif tag == "checkpoint":
                    buffer = io.BytesIO()
                    shard.checkpoint(buffer)
                    conn.send(("ok", buffer.getvalue()))
                elif tag == "fingerprint":
                    conn.send(("ok", shard.fingerprint()))
                elif tag == "ping":
                    conn.send(("ok", "pong"))
                elif tag == "stop":
                    conn.send(("ok", None))
                    return
                else:
                    conn.send(("err", RuntimeError(f"unknown request {tag!r}")))
            except Exception as exc:  # noqa: BLE001 - forwarded to parent
                try:
                    conn.send(("err", exc))
                except Exception:
                    conn.send(("err", RuntimeError(f"{type(exc).__name__}: {exc}")))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        for segment in segments.values():
            segment.close()
        conn.close()


class _StageBuffer:
    """One parity's shared-memory staging segment (parent side)."""

    def __init__(self):
        self.segment = None
        self.capacity = 0

    @property
    def name(self) -> str | None:
        return None if self.segment is None else self.segment.name

    def ensure(self, nbytes: int) -> None:
        """Guarantee at least ``nbytes`` capacity, growing geometrically."""
        from multiprocessing import shared_memory

        if nbytes <= self.capacity:
            return
        self.release()
        capacity = max(nbytes, 1, self.capacity * 2)
        self.segment = shared_memory.SharedMemory(create=True, size=capacity)
        self.capacity = capacity

    def write(self, offset: int, column: np.ndarray) -> None:
        if not column.size:
            return
        view = np.ndarray(
            (column.size,),
            dtype=column.dtype,
            buffer=self.segment.buf,
            offset=offset,
        )
        view[:] = column.reshape(-1)
        del view

    def release(self) -> None:
        """Drop the current segment (workers detach on next attach)."""
        if self.segment is not None:
            self.segment.close()
            try:
                self.segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self.segment = None
            self.capacity = 0


def _cleanup_process_executor(processes, connections, stages) -> None:
    """Finalizer-safe teardown shared by close() and weakref.finalize.

    Escalates per worker: graceful ``stop`` RPC → ``join`` → ``terminate``
    (SIGTERM) → ``kill`` (SIGKILL).  The final escalation matters for
    *stopped* (SIGSTOP'd) workers: SIGTERM stays pending while a process
    is stopped, so ``terminate`` alone would hang the teardown forever,
    while SIGKILL takes effect even on a stopped process.  Shared-memory
    staging segments are unlinked last, unconditionally, so no worker
    death mode can leak ``/dev/shm`` segments.
    """
    for conn in connections:
        try:
            conn.send(("stop",))
        except (OSError, ValueError, BrokenPipeError):
            pass
    for conn in connections:
        try:
            if conn.poll(1.0):
                conn.recv()
        except (OSError, EOFError, ValueError):
            pass
        try:
            conn.close()
        except OSError:
            pass
    for process in processes:
        process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - stuck worker
            process.terminate()
            process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - SIGTERM-immune worker
            process.kill()
            process.join(timeout=5.0)
    for stage in stages:
        stage.release()


class ProcessShardExecutor(ShardExecutor):
    """One persistent forked worker per shard, columns via shared memory.

    The constructor forks immediately: each worker inherits its shard
    object by copy-on-write (nothing is pickled) and the parent's shard
    references become **stale** — the executor never touches them again
    and the service must not either.  Two staging buffers (round parity)
    let one round compute while the next is being staged; the parent
    reuses a parity buffer only after its previous round was
    acknowledged, which the service guarantees by capping in-flight
    rounds at two.
    """

    strategy = "process"

    def __init__(self, shards: list, algorithm: str, policy=None):
        super().__init__(shards, algorithm, policy)
        if "fork" not in mp.get_all_start_methods():
            raise ConfigurationError(
                "the 'process' executor needs the fork start method, which "
                "this platform does not provide; use 'thread' or 'serial'"
            )
        context = mp.get_context("fork")
        try:
            # Start the shared-memory resource tracker *before* forking:
            # workers then inherit it instead of each spawning their own
            # (whose exit-time cleanup would race the parent's unlink).
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        self._connections = []
        self._processes = []
        self._stages = (_StageBuffer(), _StageBuffer())
        for shard in self._shards:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_loop,
                args=(shard, self._algorithm, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        # The parent-side shard objects are stale from this point on.
        self._shards = []
        self._rounds_dispatched = 0
        self._finalizer = weakref.finalize(
            self,
            _cleanup_process_executor,
            self._processes,
            self._connections,
            self._stages,
        )

    @property
    def n_shards(self) -> int:
        return len(self._connections)

    @property
    def shards(self) -> tuple:
        raise ConfigurationError(
            "shard objects live inside worker processes under the 'process' "
            "executor; use answer()/shard_ledgers()/checkpoint() instead, or "
            "run with executor='serial' to hold the shards in-process"
        )

    def _dead_error(self, index: int, exc) -> ConsistencyError:
        error = ConsistencyError(
            f"shard worker {index} died mid-request ({exc}); restore the "
            "service from its last checkpoint"
        )
        return _tag_shard(error, index)

    def _recv(self, index: int):
        conn = self._connections[index]
        timeout = None if self._policy is None else self._policy.rpc_timeout
        if timeout is not None:
            try:
                ready = conn.poll(timeout)
            except (OSError, EOFError, ValueError) as exc:
                raise self._dead_error(index, exc) from exc
            if not ready:
                error = ConsistencyError(
                    f"shard worker {index} did not respond within "
                    f"{timeout:.6g}s (hung or overloaded); the RPC stream is "
                    "now desynchronized — restore the service from its last "
                    "checkpoint"
                )
                raise _tag_shard(error, index)
        try:
            tag, payload = conn.recv()
        except (EOFError, OSError) as exc:
            raise self._dead_error(index, exc) from exc
        if tag == "err":
            raise _tag_shard(payload, index)
        return payload

    def _live_indices(self) -> list[int]:
        return [i for i in range(self.n_shards) if i not in self._disabled]

    def _request_all(self, message) -> list:
        live = self._live_indices()
        for index in live:
            try:
                self._connections[index].send(message)
            except OSError as exc:
                raise self._dead_error(index, exc) from exc
        results: list = [None] * self.n_shards
        first_error = None
        for index in live:
            try:
                results[index] = self._recv(index)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def dispatch_round(self, jobs: list) -> RoundTicket:
        live = self._live_indices()
        stage = self._stages[self._rounds_dispatched % 2]
        self._rounds_dispatched += 1
        offsets, total = [], 0
        for column, _, _ in jobs:
            # 64-byte aligned slots so worker views never straddle dtypes.
            total = -(-total // 64) * 64
            offsets.append(total)
            payload = column.data if isinstance(column, AttributeFrame) else column
            total += payload.nbytes
        stage.ensure(total)
        messages = []
        for index, ((column, entrants, exits), offset) in enumerate(
            zip(jobs, offsets)
        ):
            if index in self._disabled:
                messages.append(None)
                continue
            if isinstance(column, AttributeFrame):
                stage.write(offset, column.data)
                messages.append(
                    (
                        "observe_frame",
                        stage.name,
                        offset,
                        column.n,
                        column.width,
                        column.data.dtype.str,
                        column.names,
                        entrants,
                        exits,
                    )
                )
                continue
            stage.write(offset, column)
            messages.append(
                (
                    "observe",
                    stage.name,
                    offset,
                    int(column.shape[0]),
                    column.dtype.str,
                    entrants,
                    exits,
                )
            )
        sent = 0
        for index in live:
            try:
                self._connections[index].send(messages[index])
            except OSError as exc:
                error = self._dead_error(index, exc)
                # How many workers already received the round decides
                # whether the failure is retryable (nothing ingested) or
                # must poison the service (clocks now desynchronized).
                error.dispatched = sent
                raise error from exc
            sent += 1

        def join() -> int:
            advanced = 0
            first_error = None
            for index in live:
                try:
                    self._recv(index)
                    advanced += 1
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error
            return advanced

        return RoundTicket(join)

    def answer(self, query, t: int, kwargs: dict) -> list:
        return self._request_all(("answer", query, t, kwargs))

    def answer_batch(self, queries, times, kwargs: dict) -> list:
        """Ship the compiled workload to every worker in one RPC each.

        The query weight buffers are staged once through a shared-memory
        segment (the parity buffer that is idle — the service drains all
        in-flight rounds before answering) and every worker copies out of
        the same staging bytes, so the fan-out cost is one flat-array
        write plus one small spec message per live worker.
        """
        spec, flat = encode_workload(queries)
        name = None
        if flat.size:
            stage = self._stages[self._rounds_dispatched % 2]
            stage.ensure(flat.nbytes)
            stage.write(0, flat)
            name = stage.name
        return self._request_all(
            ("answer_batch", name, 0, int(flat.size), spec, list(times), kwargs)
        )

    def ledgers(self) -> list:
        return self._request_all(("ledger",))

    def checkpoint_blobs(self) -> list:
        return self._request_all(("checkpoint",))

    def fingerprints(self) -> list:
        return self._request_all(("fingerprint",))

    def worker_health(self) -> list[bool]:
        return [
            index not in self._disabled and self._processes[index].is_alive()
            for index in range(self.n_shards)
        ]

    def ping(self) -> list[bool]:
        """RPC round-trip per live worker; dead/hung workers report False.

        Unlike :meth:`_request_all` this never raises on a dead worker —
        it is the supervisor's heartbeat probe, and a probe that fails
        closed would turn every detected failure into a second failure.
        Must only run with no rounds in flight.
        """
        alive = [False] * self.n_shards
        timeout = 5.0 if self._policy is None else (self._policy.rpc_timeout or 5.0)
        pending = []
        for index in self._live_indices():
            if not self._processes[index].is_alive():
                continue
            try:
                self._connections[index].send(("ping",))
                pending.append(index)
            except OSError:
                pass
        for index in pending:
            try:
                if self._connections[index].poll(timeout):
                    tag, payload = self._connections[index].recv()
                    alive[index] = tag == "ok" and payload == "pong"
            except (OSError, EOFError):
                pass
        return alive

    def disable(self, index: int) -> None:
        """Exclude shard ``index`` and reap its worker (kill-escalated)."""
        super().disable(index)
        try:
            self._connections[index].close()
        except OSError:  # pragma: no cover - already closed
            pass
        process = self._processes[index]
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - SIGTERM-immune worker
            process.kill()
            process.join(timeout=5.0)

    def close(self) -> None:
        if self._finalizer.alive:
            self._finalizer()


_EXECUTORS = {
    "serial": SerialShardExecutor,
    "thread": ThreadShardExecutor,
    "process": ProcessShardExecutor,
}


def resolve_strategy(executor: str | None) -> str:
    """Resolve the strategy name: explicit arg, else env var, else serial."""
    if executor is None:
        executor = os.environ.get(EXECUTOR_ENV) or "serial"
    executor = str(executor)
    if executor not in _EXECUTORS:
        raise ConfigurationError(
            f"executor must be one of {EXECUTOR_STRATEGIES}, got {executor!r}"
        )
    return executor


def make_executor(
    executor: str | None, shards: list, algorithm: str, policy=None
) -> ShardExecutor:
    """Build the executor for ``executor`` (``None`` = env default).

    Parameters
    ----------
    executor:
        Strategy name, or ``None`` to read ``$REPRO_SHARD_EXECUTOR``.
    shards:
        Per-shard synthesizers handed to the executor (see
        :class:`ShardExecutor`).
    algorithm:
        The service's algorithm tag, for merge weights.
    policy:
        Optional :class:`~repro.serve.policy.RetryPolicy` carrying the
        RPC timeout applied by the process strategy.
    """
    return _EXECUTORS[resolve_strategy(executor)](shards, algorithm, policy)
