"""Supervision knobs: RPC timeouts, bounded retry/backoff, checkpoint cadence.

A :class:`RetryPolicy` is the single bag of fault-tolerance tunables
shared by the :mod:`repro.serve.executor` strategies (per-request RPC
timeouts on worker pipes) and the
:class:`~repro.serve.supervisor.SupervisedService` (how many times a
failed round is retried through recovery, how long to back off between
attempts, how often workers are heartbeat-probed, and how often —
and how deep — the automatic checkpoints roll).

Every knob is overridable from the environment so operators can tune a
deployment without code changes::

    REPRO_RPC_TIMEOUT=30        # seconds one worker RPC may take
    REPRO_MAX_RETRIES=2         # recovery attempts per failed round
    REPRO_BACKOFF_BASE=0.05     # first retry delay (seconds)
    REPRO_BACKOFF_FACTOR=2.0    # exponential growth per attempt
    REPRO_BACKOFF_MAX=5.0       # delay ceiling (seconds)
    REPRO_HEARTBEAT_EVERY=1     # rounds between worker liveness probes
    REPRO_CHECKPOINT_EVERY=16   # rounds between automatic checkpoints
    REPRO_CHECKPOINT_RETAIN=3   # rolling checkpoints kept on disk
"""

from __future__ import annotations

import dataclasses
import os

from repro.exceptions import ConfigurationError

__all__ = ["RetryPolicy", "POLICY_ENV_VARS"]

#: Environment variable consumed by each :class:`RetryPolicy` field.
POLICY_ENV_VARS = {
    "rpc_timeout": "REPRO_RPC_TIMEOUT",
    "max_retries": "REPRO_MAX_RETRIES",
    "backoff_base": "REPRO_BACKOFF_BASE",
    "backoff_factor": "REPRO_BACKOFF_FACTOR",
    "backoff_max": "REPRO_BACKOFF_MAX",
    "heartbeat_every": "REPRO_HEARTBEAT_EVERY",
    "checkpoint_every": "REPRO_CHECKPOINT_EVERY",
    "checkpoint_retain": "REPRO_CHECKPOINT_RETAIN",
}


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Fault-tolerance tunables for the serving supervision layer.

    Attributes
    ----------
    rpc_timeout:
        Seconds a single worker RPC (round ack, answer, ledger,
        checkpoint) may take under the ``"process"`` executor before the
        worker is declared hung and the request fails closed.  ``None``
        (the default) waits forever — the pre-supervision behavior.
    max_retries:
        How many times the supervisor re-attempts a failed round, each
        attempt preceded by a full crash recovery (restore the latest
        checkpoint, replay the journal tail).  ``0`` disables retries:
        the first failure propagates.
    backoff_base:
        Delay in seconds before the first retry.
    backoff_factor:
        Multiplicative growth of the delay per subsequent retry.
    backoff_max:
        Ceiling on any single delay, in seconds.
    heartbeat_every:
        Rounds between proactive worker-liveness probes; ``0`` disables
        heartbeating (failures are then only detected when an RPC hits a
        dead pipe).
    checkpoint_every:
        Rounds between automatic supervisor checkpoints; ``0`` disables
        periodic checkpointing (recovery then replays the whole journal).
    checkpoint_retain:
        How many rolling checkpoints the supervisor keeps on disk;
        older ones are deleted after each successful checkpoint.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If any field is negative, ``backoff_factor < 1``, or
        ``checkpoint_retain < 1``.
    """

    rpc_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    heartbeat_every: int = 1
    checkpoint_every: int = 16
    checkpoint_retain: int = 3

    def __post_init__(self):
        if self.rpc_timeout is not None and self.rpc_timeout <= 0:
            raise ConfigurationError(
                f"rpc_timeout must be positive or None, got {self.rpc_timeout}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.heartbeat_every < 0:
            raise ConfigurationError(
                f"heartbeat_every must be >= 0, got {self.heartbeat_every}"
            )
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.checkpoint_retain < 1:
            raise ConfigurationError(
                f"checkpoint_retain must be >= 1, got {self.checkpoint_retain}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff delay in seconds before retry number ``attempt``.

        Parameters
        ----------
        attempt:
            1-based retry index (the first retry is attempt 1).

        Returns
        -------
        float
            ``min(backoff_base * backoff_factor ** (attempt - 1),
            backoff_max)``.
        """
        if attempt < 1:
            return 0.0
        return min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )

    @classmethod
    def from_env(cls, **overrides) -> "RetryPolicy":
        """Build a policy from ``REPRO_*`` environment variables.

        Parameters
        ----------
        **overrides:
            Explicit field values; each beats its environment variable,
            which beats the dataclass default.

        Returns
        -------
        RetryPolicy
            The resolved policy.

        Raises
        ------
        repro.exceptions.ConfigurationError
            If an environment value does not parse as the field's type
            or violates a field constraint.
        """
        values: dict = {}
        for field, env_name in POLICY_ENV_VARS.items():
            raw = os.environ.get(env_name)
            if raw is None or field in overrides:
                continue
            try:
                if field in ("max_retries", "heartbeat_every",
                             "checkpoint_every", "checkpoint_retain"):
                    values[field] = int(raw)
                elif field == "rpc_timeout" and raw.lower() in ("", "none", "inf"):
                    values[field] = None
                else:
                    values[field] = float(raw)
            except ValueError as exc:
                raise ConfigurationError(
                    f"cannot parse ${env_name}={raw!r}: {exc}"
                ) from exc
        values.update(overrides)
        return cls(**values)
