"""Supervised serving: heartbeats, bounded retries, crash recovery.

:class:`SupervisedService` wraps a
:class:`~repro.serve.sharded.ShardedService` with the machinery a
long-lived deployment needs to survive worker crashes *without breaking
the paper's one-release-per-round DP contract*:

* every published round is recorded in an append-only, checksummed,
  fsync'd :class:`~repro.serve.journal.ReleaseJournal` **before** it is
  acknowledged to the caller;
* the service checkpoints itself every ``policy.checkpoint_every``
  rounds (atomic tmp+rename writes, rolling retention), and the journal
  is compacted down to the tail the retained checkpoints still need;
* worker liveness is probed every ``policy.heartbeat_every`` rounds, and
  worker RPCs time out after ``policy.rpc_timeout`` seconds;
* a failed round triggers **crash recovery**: the inner service is torn
  down (kill-escalated), restored from the newest readable checkpoint,
  and the journal tail is *replayed* — the checkpoint carries every RNG
  bit-generator state, so the replay consumes the identical random bits
  the original run did, and each replayed round's per-shard state
  fingerprints (plus spend and probe answers) are verified against the
  journaled values.  A replay that diverges **fails closed** with
  :class:`~repro.exceptions.RecoveryError` instead of silently
  re-noising an already-published release.  The failed round itself was
  never journaled (never acknowledged), so resubmitting it draws the
  same noise an uninterrupted run would have — no double spend;
* after ``policy.max_retries`` failed attempts, an identified culprit
  shard can (opt-in, ``degraded_ok=True``) be disabled: the service then
  serves population-weighted answers from the surviving shards, flagged
  by :class:`~repro.exceptions.DegradedServiceWarning` and the per-shard
  :meth:`health_report`.  The default is to fail closed.

Example
-------
::

    from repro.serve import SupervisedService, RetryPolicy

    service = SupervisedService(
        "state/",  n_shards=4, algorithm="cumulative",
        horizon=64, rho=0.05, seed=7, executor="process",
        policy=RetryPolicy(rpc_timeout=30.0, checkpoint_every=8),
    )
    for column in arriving_columns:
        service.observe(column)                # journaled before return
    # ... crash, restart ...
    service = SupervisedService.attach("state/", executor="process")
    assert service.t == rounds_published       # recovered, never re-noised
"""

from __future__ import annotations

import json
import os
import time
import warnings

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    ConsistencyError,
    DataValidationError,
    DegradedServiceWarning,
    RecoveryError,
    SerializationError,
)
from repro.serve.checkpoint import _decode_nonfinite, _encode_nonfinite
from repro.serve.journal import JournalRecord, ReleaseJournal
from repro.serve.policy import RetryPolicy
from repro.serve.sharded import ShardedService
from repro.types import AttributeFrame

__all__ = ["SupervisedService"]

#: Failure classes worth a recovery attempt; anything else (bad input,
#: misconfiguration, exhausted privacy budget) is not transient and
#: propagates immediately.
_TRANSIENT = (ConsistencyError, OSError, EOFError)

_SERVICE_FILE = "service.json"
_JOURNAL_FILE = "journal.log"
_CHECKPOINT_DIR = "checkpoints"
_CHECKPOINT_PREFIX = "ckpt-"
_CHECKPOINT_SUFFIX = ".bundle"


def _checkpoint_name(round_number: int) -> str:
    return f"{_CHECKPOINT_PREFIX}{round_number:08d}{_CHECKPOINT_SUFFIX}"


def _checkpoint_round(name: str) -> int | None:
    if not (name.startswith(_CHECKPOINT_PREFIX) and name.endswith(_CHECKPOINT_SUFFIX)):
        return None
    digits = name[len(_CHECKPOINT_PREFIX): -len(_CHECKPOINT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


class SupervisedService:
    """Fault-tolerant façade over a sharded continual-release service.

    Parameters
    ----------
    directory:
        State directory.  A fresh directory is initialized with a
        ``service.json`` config, an empty release journal, and a
        ``checkpoints/`` folder; a directory that already holds a
        ``service.json`` is **resumed** — the newest readable checkpoint
        is restored and the journal tail replayed (see
        :meth:`attach`).
    n_shards:
        Shard count for a fresh service (ignored on resume, where the
        persisted config wins; passing a conflicting value raises).
    algorithm:
        Algorithm tag for a fresh service (same resume rule).
    seed:
        Master seed for a fresh service.  **Required** (an explicit
        ``int``): crash recovery may need to rebuild the service from
        its config and replay the journal from round 1, which is only
        byte-reproducible with a concrete seed.
    executor:
        Shard-stepping strategy (``"serial"``/``"thread"``/``"process"``
        or ``None`` for the environment default); not persisted — each
        attach may pick a different one.
    policy:
        The :class:`~repro.serve.policy.RetryPolicy`; ``None`` uses
        :meth:`RetryPolicy.from_env`.
    probe_queries:
        Optional mapping of label → query object.  Each published
        round's probe answers are recorded in the journal and verified
        on replay (pure post-processing of the release — no extra
        privacy cost).  Not persisted (query objects are code); pass
        them again on :meth:`attach` to re-arm answer verification.
    degraded_ok:
        Opt-in graceful degradation: when recovery keeps failing on one
        identifiable shard, disable it and serve from the survivors
        (flagged via :class:`~repro.exceptions.DegradedServiceWarning`)
        instead of failing closed.  Default ``False`` — fail closed.
    **synthesizer_kwargs:
        Per-shard synthesizer configuration for a fresh service
        (``horizon``, ``rho``, ``window`` …); must be JSON-serializable
        (``math.inf`` is handled) because it is persisted in
        ``service.json`` for recovery rebuilds.

    Raises
    ------
    repro.exceptions.ConfigurationError
        On a missing/non-``int`` seed for a fresh service, config
        conflicting with a resumed directory's persisted config, or an
        invalid policy.
    repro.exceptions.RecoveryError
        If resuming cannot reconstruct the journaled state exactly.
    repro.exceptions.SerializationError
        If the journal (or ``service.json``) is corrupt mid-file.
    """

    def __init__(
        self,
        directory,
        *,
        n_shards: int | None = None,
        algorithm: str | None = None,
        seed: int | None = None,
        executor: str | None = None,
        policy: RetryPolicy | None = None,
        probe_queries: dict | None = None,
        degraded_ok: bool = False,
        **synthesizer_kwargs,
    ):
        self._directory = os.fspath(directory)
        self._executor_name = executor
        self._policy = RetryPolicy.from_env() if policy is None else policy
        self._probe_queries = dict(probe_queries or {})
        self._degraded_ok = bool(degraded_ok)
        self._needs_recovery = False
        self._closed = False
        self._journaled_spent = 0.0
        #: Human-readable supervision event log (recoveries, checkpoints,
        #: degradations) — for operators and tests; newest last.
        self.events: list[str] = []

        os.makedirs(os.path.join(self._directory, _CHECKPOINT_DIR), exist_ok=True)
        config_path = os.path.join(self._directory, _SERVICE_FILE)
        if os.path.exists(config_path):
            self._config = self._load_config(config_path)
            for name, value in (
                ("n_shards", n_shards),
                ("algorithm", algorithm),
                ("seed", seed),
            ):
                if value is not None and value != self._config[name]:
                    raise ConfigurationError(
                        f"{name}={value!r} conflicts with the persisted "
                        f"service config ({self._config[name]!r}); attach "
                        "without overriding identity parameters"
                    )
            if synthesizer_kwargs and synthesizer_kwargs != self._config["synthesizer_kwargs"]:
                raise ConfigurationError(
                    "synthesizer kwargs conflict with the persisted service "
                    "config; attach without them"
                )
        else:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ConfigurationError(
                    "SupervisedService needs an explicit int seed: recovery "
                    "may rebuild the service from its config, which is only "
                    "byte-reproducible with a concrete seed"
                )
            if n_shards is None or algorithm is None:
                raise ConfigurationError(
                    "a fresh SupervisedService needs n_shards and algorithm"
                )
            self._config = {
                "n_shards": int(n_shards),
                "algorithm": str(algorithm),
                "seed": int(seed),
                "synthesizer_kwargs": dict(synthesizer_kwargs),
            }
            self._write_config(config_path)

        self._journal = ReleaseJournal(os.path.join(self._directory, _JOURNAL_FILE))
        for record in self._journal.records():
            self._journaled_spent = max(self._journaled_spent, record.zcdp_spent)
        self._service: ShardedService | None = None
        self._recover(reason="attach")

    # ------------------------------------------------------------------
    # Construction / config persistence
    # ------------------------------------------------------------------

    @classmethod
    def attach(
        cls,
        directory,
        *,
        executor: str | None = None,
        policy: RetryPolicy | None = None,
        probe_queries: dict | None = None,
        degraded_ok: bool = False,
    ) -> "SupervisedService":
        """Resume a supervised service from its state directory.

        Restores the newest readable checkpoint and replays the journal
        tail with byte-identity verification — published rounds are
        *replayed*, never re-noised.

        Parameters
        ----------
        directory:
            A state directory previously initialized by the constructor.
        executor:
            Shard-stepping strategy for the resumed service.
        policy:
            Supervision policy; ``None`` reads the environment.
        probe_queries:
            Label → query mapping matching the one used at create time
            (enables journal answer verification during replay).
        degraded_ok:
            Opt-in graceful degradation (see the constructor).

        Returns
        -------
        SupervisedService
            The recovered service, continuing at the journaled round.

        Raises
        ------
        repro.exceptions.RecoveryError
            If the journaled state cannot be reconstructed exactly.
        repro.exceptions.SerializationError
            On a corrupt journal or unreadable ``service.json``.
        """
        if not os.path.exists(os.path.join(os.fspath(directory), _SERVICE_FILE)):
            raise ConfigurationError(
                f"{os.fspath(directory)!r} holds no supervised service "
                "(missing service.json)"
            )
        return cls(
            directory,
            executor=executor,
            policy=policy,
            probe_queries=probe_queries,
            degraded_ok=degraded_ok,
        )

    @staticmethod
    def _load_config(path: str) -> dict:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
            config = _decode_nonfinite(raw)
            return {
                "n_shards": int(config["n_shards"]),
                "algorithm": str(config["algorithm"]),
                "seed": int(config["seed"]),
                "synthesizer_kwargs": dict(config["synthesizer_kwargs"]),
            }
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise SerializationError(
                f"cannot read supervised-service config {path!r}: {exc}"
            ) from exc

    def _write_config(self, path: str) -> None:
        try:
            payload = json.dumps(
                _encode_nonfinite(self._config), indent=2, sort_keys=True,
                allow_nan=False,
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                "supervised-service synthesizer kwargs must be JSON-"
                f"serializable (they are persisted for recovery): {exc}"
            ) from exc
        temp = path + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)

    def _build_fresh(self) -> ShardedService:
        return ShardedService(
            self._config["n_shards"],
            algorithm=self._config["algorithm"],
            seed=self._config["seed"],
            executor=self._executor_name,
            policy=self._policy,
            **self._config["synthesizer_kwargs"],
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def directory(self) -> str:
        """The service's state directory."""
        return self._directory

    @property
    def journal(self) -> ReleaseJournal:
        """The underlying release journal (read access for audits)."""
        return self._journal

    @property
    def service(self) -> ShardedService:
        """The wrapped sharded service (replaced across recoveries)."""
        return self._service

    @property
    def policy(self) -> RetryPolicy:
        """The active supervision policy."""
        return self._policy

    @property
    def t(self) -> int:
        """Published (journaled) rounds so far — resume feeding from here."""
        return self._journal.last_round

    @property
    def degraded(self) -> bool:
        """True when the inner service is serving from a shard subset."""
        return self._service is not None and self._service.degraded

    def health_report(self) -> list[dict]:
        """Per-shard status of the inner service (see ``ShardedService``)."""
        return self._service.health_report()

    def zcdp_spent(self) -> float:
        """Service-wide zCDP spend, monotone across crashes and recovery.

        The maximum of the live service's spend and the highest spend
        ever journaled — so a degraded service (whose dead shard may
        have been the argmax) never *under*-reports, and no recovery
        path can make the reported spend rewind.
        """
        live = 0.0 if self._service is None else self._service.zcdp_spent()
        return max(live, self._journaled_spent)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def answer(self, query, t: int, **kwargs) -> float:
        """Merged query answer at round ``t`` (see ``ShardedService.answer``).

        Parameters
        ----------
        query:
            Query object understood by the per-shard releases.
        t:
            Round to answer at (``1 <= t <= self.t``).
        **kwargs:
            Forwarded to the per-shard ``answer`` calls.

        Returns
        -------
        float
            The population-weighted merged answer; on a degraded
            service the merge covers the surviving shards and a
            :class:`~repro.exceptions.DegradedServiceWarning` is
            emitted.
        """
        if self._needs_recovery:
            self._recover(reason="answer after failure")
        return self._service.answer(query, t, **kwargs)

    def answer_batch(self, queries, times, **kwargs):
        """Merged answer grid for a workload (see ``ShardedService.answer_batch``).

        Recovers a failed service first, exactly like :meth:`answer`,
        then passes the batch through unchanged.

        Returns
        -------
        numpy.ndarray
            The ``(len(queries), len(times))`` merged grid.
        """
        if self._needs_recovery:
            self._recover(reason="answer_batch after failure")
        return self._service.answer_batch(queries, times, **kwargs)

    def observe(self, column, *, entrants: int = 0, exits=None) -> JournalRecord:
        """Ingest and durably publish the next round.

        The round is acknowledged (this method returns) only after its
        release is journaled — answers, per-shard state fingerprints,
        and spend, fsync'd to disk.  On a shard failure the supervisor
        runs bounded recover-and-retry (``policy.max_retries`` attempts
        with exponential backoff); the failed attempt was never
        journaled, so the retry draws the same noise an uninterrupted
        run would have.

        Parameters
        ----------
        column:
            The round's report vector over the active population (see
            ``ShardedService.observe``).
        entrants:
            Individuals entering this round.
        exits:
            Global ids departing as of this round.

        Returns
        -------
        JournalRecord
            The journaled release record (round, fingerprints, spend,
            probe answers).

        Raises
        ------
        repro.exceptions.DataValidationError
            On invalid input (never retried — fix the column).
        repro.exceptions.RecoveryError
            When the retry budget is exhausted and degradation is off
            (or impossible): the service fails closed.
        repro.exceptions.SerializationError
            On a corrupt journal or checkpoint discovered en route.
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        if isinstance(column, AttributeFrame):
            if column.width != 1:
                raise ConfigurationError(
                    "SupervisedService journals single-column rounds; "
                    "multi-attribute frames are not supported yet — use "
                    "ShardedService directly for multi-attribute streams"
                )
            column = column.sole()
        column = np.asarray(column)
        round_number = self._journal.last_round + 1
        last_error: BaseException | None = None
        culprits: dict[int, int] = {}
        for attempt in range(self._policy.max_retries + 1):
            if attempt:
                time.sleep(self._policy.delay(attempt))
            try:
                if self._needs_recovery:
                    self._recover(reason=f"round {round_number} retry {attempt}")
                if self._journal.last_round >= round_number:
                    # The "failed" append actually reached the disk (e.g.
                    # a crash after write, before the ack) — the round is
                    # durable; re-ingesting it would double-publish.
                    return self._journal.records()[-1]
                self._heartbeat(round_number)
                self._service.observe(column, entrants=entrants, exits=exits)
                record = self._build_record(round_number, column, entrants, exits)
                try:
                    self._journal.append(record)
                except Exception:
                    # Applied in memory but not durable: the next attempt
                    # must roll the un-journaled round back via recovery.
                    self._needs_recovery = True
                    raise
                self._journaled_spent = max(self._journaled_spent, record.zcdp_spent)
                self._maybe_checkpoint(round_number)
                return record
            except DataValidationError:
                raise  # caller error; the service state is untouched
            except _TRANSIENT as exc:
                last_error = exc
                self._needs_recovery = True
                shard = getattr(exc, "shard_index", None)
                if shard is not None:
                    culprits[shard] = culprits.get(shard, 0) + 1
                self.events.append(
                    f"round {round_number} attempt {attempt + 1} failed: "
                    f"{type(exc).__name__}: {exc}"
                )
        if self._degraded_ok and culprits:
            culprit = max(culprits, key=lambda index: (culprits[index], -index))
            self._recover(
                reason=f"degrading after round {round_number} retries",
                disable=(culprit, f"failed {culprits[culprit]} recovery attempts"),
            )
            self._needs_recovery = False
            self._service.observe(column, entrants=entrants, exits=exits)
            record = self._build_record(round_number, column, entrants, exits)
            self._journal.append(record)
            self._journaled_spent = max(self._journaled_spent, record.zcdp_spent)
            self.events.append(
                f"round {round_number} published degraded (shard {culprit} disabled)"
            )
            return record
        raise RecoveryError(
            f"round {round_number} failed after {self._policy.max_retries + 1} "
            f"attempts ({type(last_error).__name__}: {last_error}); the "
            "service fails closed"
            + (
                ""
                if self._degraded_ok
                else " — pass degraded_ok=True to serve from surviving shards"
            )
        ) from last_error

    def _heartbeat(self, round_number: int) -> None:
        """Probe worker liveness; a dead worker fails the round up front."""
        every = self._policy.heartbeat_every
        if not every or round_number % every:
            return
        for entry in self._service.health_report():
            if entry["status"] == "dead":
                error = ConsistencyError(
                    f"heartbeat: shard {entry['shard']} worker is dead "
                    f"({entry['reason']})"
                )
                error.shard_index = entry["shard"]
                raise error

    def _build_record(
        self, round_number: int, column: np.ndarray, entrants: int, exits
    ) -> JournalRecord:
        exits_tuple = tuple(
            int(e) for e in (np.asarray([] if exits is None else exits).ravel())
        )
        fingerprints = tuple(
            "" if digest is None else digest
            for digest in self._service.state_fingerprints()
        )
        spent = max(self._service.zcdp_spent(), self._journaled_spent)
        answers = {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedServiceWarning)
            for label, query in self._probe_queries.items():
                try:
                    answers[label] = float(self._service.answer(query, round_number))
                except ConfigurationError:
                    # A windowed probe is undefined before its first
                    # answerable round; it joins the journal once live.
                    continue
        return JournalRecord(
            round=round_number,
            column=column,
            entrants=int(entrants),
            exits=exits_tuple,
            fingerprints=fingerprints,
            zcdp_spent=spent,
            answers=answers,
        )

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def _checkpoint_paths(self) -> list[tuple[int, str]]:
        """Retained ``(round, path)`` pairs, oldest first."""
        folder = os.path.join(self._directory, _CHECKPOINT_DIR)
        entries = []
        for name in os.listdir(folder):
            round_number = _checkpoint_round(name)
            if round_number is not None:
                entries.append((round_number, os.path.join(folder, name)))
        return sorted(entries)

    def checkpoint(self) -> str:
        """Write a checkpoint now (also runs on the periodic cadence).

        The bundle is written to a temporary file and atomically renamed
        into ``checkpoints/ckpt-<round>.bundle``; old checkpoints beyond
        ``policy.checkpoint_retain`` are deleted, and the journal is
        compacted down to what the oldest retained checkpoint still
        needs.

        Returns
        -------
        str
            Path of the new checkpoint bundle.

        Raises
        ------
        repro.exceptions.RecoveryError
            On a degraded service (its full state no longer exists).
        """
        if self._needs_recovery:
            self._recover(reason="checkpoint after failure")
        round_number = self._journal.last_round
        folder = os.path.join(self._directory, _CHECKPOINT_DIR)
        path = os.path.join(folder, _checkpoint_name(round_number))
        temp = path + ".tmp"
        try:
            self._service.checkpoint(temp)
            os.replace(temp, path)
        finally:
            if os.path.exists(temp):
                os.unlink(temp)
        retained = self._checkpoint_paths()
        while len(retained) > self._policy.checkpoint_retain:
            _, stale = retained.pop(0)
            try:
                os.unlink(stale)
            except OSError:  # pragma: no cover - raced by an operator
                pass
        if retained:
            self._journal.compact(retained[0][0])
        self.events.append(f"checkpoint at round {round_number}")
        return path

    def _maybe_checkpoint(self, round_number: int) -> None:
        every = self._policy.checkpoint_every
        if self._service.degraded:
            return  # a degraded service has no complete state to snapshot
        if every and round_number % every == 0:
            self.checkpoint()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _recover(
        self, *, reason: str, disable: tuple[int, str] | None = None
    ) -> None:
        """Tear down, restore the newest usable checkpoint, replay the tail.

        The DP-critical invariant lives here: journaled rounds are
        **replayed** through the restored service (same RNG state ⇒ same
        bytes) and verified against the journaled fingerprints/spend/
        answers — never re-noised.  Any divergence raises
        :class:`~repro.exceptions.RecoveryError`.
        """
        if self._service is not None:
            try:
                self._service.close()
            except Exception:  # pragma: no cover - teardown is best-effort
                pass
            self._service = None
        records = self._journal.records()
        service = None
        base_round = 0
        for round_number, path in reversed(self._checkpoint_paths()):
            try:
                service = ShardedService.restore(
                    path, executor=self._executor_name, policy=self._policy
                )
            except SerializationError as exc:
                self.events.append(
                    f"checkpoint {os.path.basename(path)} unreadable "
                    f"({exc}); trying an older one"
                )
                continue
            base_round = round_number
            if service.t != round_number:
                raise RecoveryError(
                    f"checkpoint {os.path.basename(path)} claims round "
                    f"{round_number} but restored to t={service.t}"
                )
            break
        if service is None:
            if records and records[0].round != 1:
                raise RecoveryError(
                    "no readable checkpoint and the journal starts at round "
                    f"{records[0].round} (compacted); the journaled state "
                    "cannot be reconstructed — fail closed"
                )
            if not records and self._journal.base_round > 0:
                raise RecoveryError(
                    "no readable checkpoint and the journal was compacted to "
                    f"round {self._journal.base_round}; the journaled state "
                    "cannot be reconstructed — fail closed"
                )
            service = self._build_fresh()
        elif base_round > self._journal.last_round:
            # The journal lost acknowledged rounds (e.g. a truncated
            # tail) but the checkpoint proves they were published — it
            # is only ever written *after* its round was journaled.  The
            # checkpoint state is authoritative; fast-forward the
            # journal so round numbering stays aligned.
            self.events.append(
                f"journal ends at round {self._journal.last_round}, behind "
                f"checkpoint round {base_round} (truncated tail?); "
                "fast-forwarding the journal to the checkpoint"
            )
            self._journal.compact(base_round)
            records = []
        if disable is not None:
            index, why = disable
            service.disable_shard(index, why)
        replayed = 0
        for record in records:
            if record.round <= base_round:
                continue
            if record.round != service.t + 1:
                raise RecoveryError(
                    f"journal round {record.round} does not follow the "
                    f"restored state at t={service.t}; refusing to guess"
                )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedServiceWarning)
                service.observe(
                    record.column,
                    entrants=record.entrants,
                    exits=list(record.exits),
                )
                self._verify_replay(service, record)
            replayed += 1
        self._service = service
        self._needs_recovery = False
        self.events.append(
            f"recovered ({reason}): checkpoint round {base_round} + "
            f"{replayed} journal rounds replayed"
        )

    def _verify_replay(self, service: ShardedService, record: JournalRecord) -> None:
        """Assert one replayed round reproduced the published bytes."""
        live = service.state_fingerprints()
        for index, journaled in enumerate(record.fingerprints):
            if not journaled or live[index] is None:
                continue  # shard was (or now is) disabled — nothing to compare
            if live[index] != journaled:
                raise RecoveryError(
                    f"replay of round {record.round} diverged on shard "
                    f"{index}: state fingerprint {live[index][:12]}… != "
                    f"journaled {journaled[:12]}… — continuing would re-noise "
                    "an already-published release; fail closed"
                )
        spent = service.zcdp_spent()
        if service.degraded:
            if spent > record.zcdp_spent + 1e-12:
                raise RecoveryError(
                    f"replay of round {record.round} overspent the journaled "
                    f"budget ({spent} > {record.zcdp_spent})"
                )
        elif spent != record.zcdp_spent:
            raise RecoveryError(
                f"replay of round {record.round} spent {spent}, journal "
                f"records {record.zcdp_spent} — the replay is not the "
                "published mechanism; fail closed"
            )
        self._journaled_spent = max(self._journaled_spent, record.zcdp_spent)
        if not service.degraded:
            for label, journaled_answer in record.answers.items():
                query = self._probe_queries.get(label)
                if query is None:
                    continue
                value = float(service.answer(query, record.round))
                same = (
                    value == journaled_answer
                    or (np.isnan(value) and np.isnan(journaled_answer))
                )
                if not same:
                    raise RecoveryError(
                        f"replay of round {record.round} answered probe "
                        f"{label!r} with {value!r}, journal records "
                        f"{journaled_answer!r} — refusing to republish a "
                        "different release"
                    )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release workers, staging memory, and the journal handle.

        Idempotent; the state directory remains ready for
        :meth:`attach`.
        """
        if self._closed:
            return
        self._closed = True
        if self._service is not None:
            try:
                self._service.close()
            finally:
                self._service = None
        self._journal.close()

    def __enter__(self) -> "SupervisedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SupervisedService(directory={self._directory!r}, "
            f"t={self.t}, degraded={self.degraded})"
        )
