"""Versioned, integrity-checked checkpoint bundles.

A version-3 checkpoint bundle is a single zip file holding:

``manifest.json``
    Format name/version, library version, the bundle ``kind``
    (``"streaming"`` or ``"sharded"``), the synthesizer ``config``, the
    JSON half of the serialized ``state`` (array leaves replaced by
    ``{"__array__": <key>}`` placeholders), a SHA-256 checksum over the
    canonical JSON of ``config`` + ``state``, and one SHA-256 checksum
    per array member.

``arrays/<key>.npy``
    One ``.npy`` member per NumPy array leaf of the state, named by the
    array's ``/``-joined path in the state tree.  Members are **spooled**
    into the zip chunk by chunk as they are written, so checkpointing a
    multi-gigabyte state never materializes a second in-RAM copy of it —
    peak writer memory is one compression buffer, not the state size.
    All member timestamps are pinned to the zip epoch, so two services
    in the same state produce **byte-identical** bundles (the sharded
    executor-equivalence tests rely on this).

Version-2 bundles (a single ``arrays.npz`` member with one whole-archive
checksum) remain fully readable; :func:`write_bundle` can still emit
them via ``format_version=2`` for forward-deployment scenarios.

The split is lossless: :func:`read_bundle` re-grafts each array back at
its placeholder, so components (synthesizers, banks, counters, stores)
serialize to ordinary nested dicts and never touch files themselves.
Every failure mode — unreadable zip, missing member, bad JSON, unknown
format or version, checksum mismatch, pickled arrays — raises
:class:`~repro.exceptions.SerializationError`, never a bare
``ValueError``/``KeyError``.

See ``docs/source/checkpoint-format.rst`` for the on-disk reference.
"""

from __future__ import annotations

import hashlib
import io
import json
import math
import os
import tempfile
import zipfile
import zlib

import numpy as np

from repro.exceptions import SerializationError

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "split_arrays",
    "join_arrays",
    "write_bundle",
    "read_bundle",
    "state_fingerprint",
]

#: Identifies a repro checkpoint bundle (guards against foreign zips).
FORMAT_NAME = "repro-checkpoint"

#: Current bundle format version; bump on any incompatible layout change.
#: Version 2 added the dynamic-population state: the synthesizers'
#: ``ledger`` lifespan table, the stores' ``active`` masks, and the
#: sharded service's ``shard_of``/``active`` assignment.  Version 3
#: replaced the monolithic ``arrays.npz`` member with one streamed
#: ``arrays/<key>.npy`` member per array (per-member checksums,
#: deterministic timestamps) so the writer's peak memory is independent
#: of the state size; version-2 bundles remain readable.
FORMAT_VERSION = 3

#: Versions this reader accepts.
SUPPORTED_VERSIONS = (2, 3)

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"
_ARRAY_DIR = "arrays/"
_ARRAY_SUFFIX = ".npy"
_ARRAY_MARKER = "__array__"
_ARRAY_KEY_PREFIX = "k/"
_NONFINITE_MARKER = "__nonfinite__"

#: Fixed member timestamp (the zip epoch): bundles are byte-deterministic
#: functions of their content, never of the wall clock.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)

_JSON_SCALARS = (str, int, float, bool, type(None))

# Non-finite floats (rho=inf is an advertised mode) are not valid RFC-8259
# JSON, so they travel as {"__nonfinite__": "inf" | "-inf" | "nan"}
# markers; the manifest stays parseable by jq and non-Python tooling.
_NONFINITE_ENCODE = {math.inf: "inf", -math.inf: "-inf"}
_NONFINITE_DECODE = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


def _encode_nonfinite(value):
    """Replace non-finite floats with JSON-safe markers, recursively."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return {_NONFINITE_MARKER: "nan"}
        return {_NONFINITE_MARKER: _NONFINITE_ENCODE[value]}
    if isinstance(value, dict):
        return {key: _encode_nonfinite(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_encode_nonfinite(item) for item in value]
    return value


def _decode_nonfinite(value):
    """Inverse of :func:`_encode_nonfinite`."""
    if isinstance(value, dict):
        if set(value) == {_NONFINITE_MARKER}:
            try:
                return _NONFINITE_DECODE[value[_NONFINITE_MARKER]]
            except (KeyError, TypeError) as exc:
                raise SerializationError(
                    f"invalid non-finite marker {value!r}"
                ) from exc
        return {key: _decode_nonfinite(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_nonfinite(item) for item in value]
    return value


def split_arrays(state, path: str = "") -> tuple[object, dict[str, np.ndarray]]:
    """Split a nested state dict into its JSON half and its array leaves.

    Parameters
    ----------
    state:
        A nested structure of dicts, lists, JSON scalars, and NumPy
        arrays.  Arrays may appear only as dict values (not inside
        lists), so every array has a stable ``/``-joined key.
    path:
        Internal recursion accumulator; leave at the default.

    Returns
    -------
    tuple
        ``(json_part, arrays)`` where ``json_part`` mirrors ``state``
        with each array replaced by an ``{"__array__": key}`` placeholder
        and ``arrays`` maps those keys to the arrays.

    Raises
    ------
    SerializationError
        If a value is not JSON-serializable (sets, custom objects) or an
        array is nested inside a list.
    """
    if isinstance(state, np.ndarray):
        if not path:
            raise SerializationError("the state root must be a dict, not an array")
        return {_ARRAY_MARKER: path}, {path: state}
    if isinstance(state, dict):
        if set(state) in ({_ARRAY_MARKER}, {_NONFINITE_MARKER}):
            # A user-supplied dict shaped exactly like one of the format's
            # reserved markers would be mis-decoded on read; refuse it at
            # write time rather than corrupt the round-trip.
            raise SerializationError(
                f"state dict at {path or '<root>'!r} collides with the "
                f"reserved marker shape {set(state)}"
            )
        json_part: dict = {}
        arrays: dict[str, np.ndarray] = {}
        for key, value in state.items():
            if not isinstance(key, str) or "/" in key or not key:
                raise SerializationError(
                    f"state keys must be non-empty strings without '/', got {key!r}"
                )
            child_json, child_arrays = split_arrays(
                value, f"{path}/{key}" if path else key
            )
            json_part[key] = child_json
            arrays.update(child_arrays)
        return json_part, arrays
    if isinstance(state, (list, tuple)):
        out = []
        for item in state:
            if isinstance(item, (np.ndarray, dict, list, tuple)):
                if isinstance(item, np.ndarray):
                    raise SerializationError(
                        f"arrays may not be nested inside lists (at {path!r}); "
                        "key them in a dict instead"
                    )
                child_json, child_arrays = split_arrays(item, path)
                if child_arrays:
                    raise SerializationError(
                        f"arrays may not be nested inside lists (at {path!r})"
                    )
                out.append(child_json)
            else:
                out.append(_as_json_scalar(item, path))
        return out, {}
    return _as_json_scalar(state, path), {}


def _as_json_scalar(value, path: str):
    """Coerce NumPy scalars to Python; reject non-JSON values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, _JSON_SCALARS):
        return value
    raise SerializationError(
        f"state value at {path!r} is not JSON-serializable: {type(value).__name__}"
    )


def join_arrays(json_part, arrays: dict[str, np.ndarray]):
    """Inverse of :func:`split_arrays`: graft arrays back at their markers.

    Parameters
    ----------
    json_part:
        The JSON half of a state tree, containing array placeholders.
    arrays:
        The array leaves keyed by placeholder key.

    Returns
    -------
    object
        The reassembled state tree.

    Raises
    ------
    SerializationError
        If a placeholder references a key missing from ``arrays``.
    """
    if isinstance(json_part, dict):
        if set(json_part) == {_ARRAY_MARKER}:
            key = json_part[_ARRAY_MARKER]
            try:
                return arrays[key]
            except KeyError:
                raise SerializationError(
                    f"bundle arrays are missing entry {key!r}"
                ) from None
        return {key: join_arrays(value, arrays) for key, value in json_part.items()}
    if isinstance(json_part, list):
        return [join_arrays(item, arrays) for item in json_part]
    return json_part


def _canonical_json(payload) -> bytes:
    try:
        # allow_nan=False guarantees the checksummed form is RFC-8259
        # JSON; non-finite floats must already be marker-encoded.
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        ).encode()
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"state is not JSON-serializable: {exc}") from exc


def state_fingerprint(config: dict, state: dict) -> str:
    """SHA-256 fingerprint of a full ``(config, state)`` snapshot.

    The fingerprint covers every byte that :func:`write_bundle` would
    persist — the canonical JSON of the config and the JSON half of the
    state, plus the dtype, shape, and raw bytes of every array leaf — so
    two snapshots fingerprint equal **iff** their checkpoint bundles
    would be byte-identical.  The serving layer's release journal records
    one fingerprint per published round; on crash recovery the journal
    tail is replayed and each round's fingerprint re-derived, which is
    how "journaled rounds are replayed byte-identically, never re-noised"
    is asserted rather than assumed (a recovery that drew fresh noise
    would consume different RNG bits and land in a different state).

    Parameters
    ----------
    config:
        The synthesizer's JSON-safe constructor configuration.
    state:
        A ``state_dict()`` snapshot (nested dicts with array leaves).

    Returns
    -------
    str
        A hex SHA-256 digest.

    Raises
    ------
    SerializationError
        If the snapshot contains values the bundle format cannot
        represent (the same rejection :func:`write_bundle` applies).
    """
    json_state, arrays = split_arrays(state)
    digest = hashlib.sha256()
    digest.update(
        _canonical_json(
            {
                "config": _encode_nonfinite(config),
                "state": _encode_nonfinite(json_state),
            }
        )
    )
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(array.dtype).encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


class _HashingWriter:
    """File-object proxy forwarding writes while hashing the bytes."""

    def __init__(self, target):
        self._target = target
        self._digest = hashlib.sha256()
        self.nbytes = 0

    def write(self, data) -> int:
        view = memoryview(data)
        self._digest.update(view)
        self.nbytes += view.nbytes
        self._target.write(view)
        return view.nbytes

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


def _member_info(name: str, compress_type: int) -> zipfile.ZipInfo:
    """A deterministic member header: epoch timestamp, fixed mode bits."""
    info = zipfile.ZipInfo(name, date_time=_ZIP_EPOCH)
    info.compress_type = compress_type
    info.external_attr = 0o644 << 16  # plain rw-r--r-- file
    return info


def _array_member(key: str) -> str:
    return f"{_ARRAY_DIR}{key}{_ARRAY_SUFFIX}"


def write_bundle(
    path,
    kind: str,
    config: dict,
    state: dict,
    *,
    compress_arrays: bool = True,
    format_version: int = FORMAT_VERSION,
) -> None:
    """Write one checkpoint bundle.

    Parameters
    ----------
    path:
        Target file path (``str`` / ``os.PathLike``) or a writable binary
        file object (the sharded service nests shard bundles this way).
    kind:
        Bundle kind tag, e.g. ``"streaming"`` or ``"sharded"``; checked
        again by :func:`read_bundle`.
    config:
        JSON-safe constructor configuration (no arrays).
    state:
        Nested state dict; NumPy array leaves become streamed
        ``arrays/<key>.npy`` members (version 3) or entries of a single
        ``arrays.npz`` member (version 2).
    compress_arrays:
        Deflate the array members (default).  Pass ``False`` when the
        arrays are already-compressed byte blobs — the sharded service
        does this for its nested shard bundles — so incompressible bytes
        don't pay a useless second DEFLATE pass.  Readers handle both
        forms transparently.
    format_version:
        Bundle format to emit: 3 (default, streamed per-array members)
        or 2 (the legacy monolithic ``arrays.npz``, for deployments
        whose readers predate version 3).

    Raises
    ------
    SerializationError
        If the state contains values the format cannot represent, or
        ``format_version`` is not a writable version.

    Notes
    -----
    Version-3 array members are spooled chunk by chunk straight into the
    zip (NumPy's ``.npy`` serializer writes buffered slabs, not one
    monolithic ``tobytes()``), so the writer's peak memory does not scale
    with the state size — pass ``state_dict(copy=False)`` snapshots to
    keep the whole checkpoint path allocation-lean.  Member timestamps
    are pinned, making equal states produce byte-identical bundles.

    Filesystem writes are atomic: the bundle is assembled in a temporary
    file in the target directory and renamed over ``path``, so a crash
    mid-write (the very scenario checkpoints exist for) never destroys
    the previous good checkpoint at the same path.
    """
    from repro import __version__

    if format_version not in SUPPORTED_VERSIONS:
        raise SerializationError(
            f"cannot write checkpoint format version {format_version!r}; "
            f"writable versions are {SUPPORTED_VERSIONS}"
        )
    json_state, arrays = split_arrays(state)
    json_state = _encode_nonfinite(json_state)
    config = _encode_nonfinite(config)
    manifest = {
        "format": FORMAT_NAME,
        "format_version": format_version,
        "library_version": __version__,
        "kind": str(kind),
        "config": config,
        "state": json_state,
        "state_checksum": hashlib.sha256(
            _canonical_json({"config": config, "state": json_state})
        ).hexdigest(),
    }

    if format_version == 2:
        buffer = io.BytesIO()
        # Keys are passed to savez as **kwargs, where a bare top-level key
        # like "file" would collide with the function's own parameter; the
        # "k/" prefix (stripped on read) makes every key collision-proof.
        prefixed = {
            f"{_ARRAY_KEY_PREFIX}{key}": value for key, value in arrays.items()
        }
        if compress_arrays:
            np.savez_compressed(buffer, **prefixed)
        else:
            np.savez(buffer, **prefixed)
        array_bytes = buffer.getvalue()
        manifest["arrays_checksum"] = hashlib.sha256(array_bytes).hexdigest()
        manifest_text = json.dumps(manifest, indent=2, sort_keys=True, allow_nan=False)

        def _fill(target) -> None:
            with zipfile.ZipFile(
                target, "w", compression=zipfile.ZIP_DEFLATED
            ) as bundle:
                bundle.writestr(_MANIFEST, manifest_text)
                # The npz member is already DEFLATE-compressed per array;
                # store it as-is instead of a second (useless) pass.
                bundle.writestr(
                    _ARRAYS, array_bytes, compress_type=zipfile.ZIP_STORED
                )

    else:
        member_type = zipfile.ZIP_DEFLATED if compress_arrays else zipfile.ZIP_STORED

        def _fill(target) -> None:
            checksums: dict[str, str] = {}
            with zipfile.ZipFile(
                target, "w", compression=zipfile.ZIP_DEFLATED
            ) as bundle:
                for key in sorted(arrays):
                    info = _member_info(_array_member(key), member_type)
                    with bundle.open(info, "w", force_zip64=True) as member:
                        writer = _HashingWriter(member)
                        np.lib.format.write_array(
                            writer, np.asanyarray(arrays[key]), allow_pickle=False
                        )
                    checksums[key] = writer.hexdigest()
                manifest["array_checksums"] = checksums
                manifest_text = json.dumps(
                    manifest, indent=2, sort_keys=True, allow_nan=False
                )
                bundle.writestr(
                    _member_info(_MANIFEST, zipfile.ZIP_DEFLATED), manifest_text
                )

    if isinstance(path, (str, os.PathLike)):
        # Atomic replace: never truncate an existing good checkpoint
        # before the new one is fully on disk.
        directory = os.path.dirname(os.fspath(path)) or "."
        fd, temp_path = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
        try:
            # mkstemp creates 0600; apply the umask-derived mode ordinary
            # open() would have produced so other-user readers still work.
            # (fchmod is POSIX-only; Windows has no comparable mode bits.)
            if hasattr(os, "fchmod"):
                umask = os.umask(0)
                os.umask(umask)
                os.fchmod(fd, 0o666 & ~umask)
            with os.fdopen(fd, "wb") as handle:
                _fill(handle)
                handle.flush()
                # Force the bytes to disk before the rename is journaled,
                # or a power loss could leave the renamed file truncated —
                # destroying the old checkpoint anyway.
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
            try:
                dir_fd = os.open(directory, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
            except OSError:
                pass  # directory fsync is best-effort (unsupported on some OSes)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
    else:
        _fill(path)


def read_bundle(path, kind: str | None = None) -> tuple[dict, dict]:
    """Read, verify, and reassemble a checkpoint bundle.

    Parameters
    ----------
    path:
        Bundle file path or a readable binary file object.
    kind:
        When given, the bundle's ``kind`` must match exactly.

    Returns
    -------
    tuple
        ``(config, state)`` — the constructor configuration and the
        reassembled state tree with NumPy arrays back in place.

    Raises
    ------
    SerializationError
        If the file is not a zip, a member is missing, the manifest is
        not valid JSON, the format name or version is unsupported, the
        requested ``kind`` does not match, or either checksum fails
        (a truncated or tampered bundle).
    """
    try:
        with zipfile.ZipFile(path, "r") as bundle:
            try:
                manifest_bytes = bundle.read(_MANIFEST)
            except KeyError as exc:
                raise SerializationError(f"bundle member missing: {exc}") from exc
            try:
                manifest = json.loads(manifest_bytes)
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"bundle manifest is not valid JSON: {exc}"
                ) from exc
            if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
                raise SerializationError(
                    f"not a {FORMAT_NAME} bundle (format={manifest.get('format')!r})"
                    if isinstance(manifest, dict)
                    else "bundle manifest must be a JSON object"
                )
            version = manifest.get("format_version")
            if version not in SUPPORTED_VERSIONS:
                raise SerializationError(
                    f"unsupported checkpoint format version {version!r}; "
                    f"this build reads versions {SUPPORTED_VERSIONS}"
                )
            if kind is not None and manifest.get("kind") != kind:
                raise SerializationError(
                    f"expected a {kind!r} bundle, got kind={manifest.get('kind')!r}"
                )
            try:
                config = manifest["config"]
                json_state = manifest["state"]
                state_checksum = manifest["state_checksum"]
            except KeyError as exc:
                raise SerializationError(
                    f"bundle manifest missing field: {exc}"
                ) from exc
            digest = hashlib.sha256(
                _canonical_json({"config": config, "state": json_state})
            ).hexdigest()
            if digest != state_checksum:
                raise SerializationError(
                    "bundle state checksum mismatch — the manifest was modified "
                    "after the checkpoint was written"
                )
            if version == 2:
                arrays = _read_arrays_v2(bundle, manifest)
            else:
                arrays = _read_arrays_v3(bundle, manifest)
    except SerializationError:
        raise
    except zipfile.BadZipFile as exc:
        # Distinguish the torn-write signature (a bundle whose trailing
        # central directory never made it to disk — power loss or crash
        # mid-copy) from in-place corruption: operators react differently
        # (delete the partial file vs investigate tampering).
        raise SerializationError(_bad_zip_message(path, exc)) from exc
    except (OSError, zlib.error) as exc:
        # A flipped byte inside a member surfaces as a zlib/CRC failure
        # during decompression, not as a checksum mismatch — both are the
        # same condition to callers: a corrupt bundle.
        raise SerializationError(f"cannot read checkpoint bundle: {exc}") from exc
    config = _decode_nonfinite(config)
    json_state = _decode_nonfinite(json_state)
    return config, join_arrays(json_state, arrays)


#: End-of-central-directory signature; every intact zip ends with one
#: within the final ~65.5 KiB (the maximum zip comment length).
_EOCD_MAGIC = b"PK\x05\x06"
_EOCD_SCAN = 65_557 + 64


def _bad_zip_message(path, exc: zipfile.BadZipFile) -> str:
    """A diagnosis for an unreadable zip: torn write vs corruption.

    A checkpoint (or nested shard bundle) interrupted mid-write loses its
    trailing central directory, so the end-of-central-directory record is
    absent from the file's tail; scanning for it separates "this file is
    an incomplete write — delete it and fall back to an older checkpoint"
    from "this file was corrupted in place".  A file that does not even
    *start* with a zip signature is not a torn checkpoint at all — just
    not a checkpoint — and keeps the generic diagnosis.
    """
    head = b""
    tail = b""
    try:
        if isinstance(path, (str, os.PathLike)):
            with open(path, "rb") as handle:
                head = handle.read(4)
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                handle.seek(max(0, size - _EOCD_SCAN))
                tail = handle.read()
        elif hasattr(path, "seek") and hasattr(path, "read"):
            path.seek(0)
            head = path.read(4)
            path.seek(0, os.SEEK_END)
            size = path.tell()
            path.seek(max(0, size - _EOCD_SCAN))
            tail = path.read()
    except (OSError, ValueError):  # pragma: no cover - unreadable handle
        return f"cannot read checkpoint bundle: {exc}"
    if head.startswith(b"PK") and _EOCD_MAGIC not in tail:
        return (
            "checkpoint bundle is truncated: the zip central directory "
            "was cut off mid-write (no end-of-central-directory record) — "
            "the file is an incomplete or torn write, not a valid "
            "checkpoint; delete it and restore from an older bundle"
        )
    return f"cannot read checkpoint bundle: {exc}"


def _read_arrays_v2(bundle: zipfile.ZipFile, manifest: dict) -> dict[str, np.ndarray]:
    """Decode the version-2 monolithic ``arrays.npz`` member."""
    try:
        array_bytes = bundle.read(_ARRAYS)
    except KeyError as exc:
        raise SerializationError(f"bundle member missing: {exc}") from exc
    try:
        arrays_checksum = manifest["arrays_checksum"]
    except KeyError as exc:
        raise SerializationError(f"bundle manifest missing field: {exc}") from exc
    if hashlib.sha256(array_bytes).hexdigest() != arrays_checksum:
        raise SerializationError(
            "bundle array checksum mismatch — arrays.npz was modified "
            "after the checkpoint was written"
        )
    try:
        with np.load(io.BytesIO(array_bytes), allow_pickle=False) as archive:
            arrays = {}
            for key in archive.files:
                if not key.startswith(_ARRAY_KEY_PREFIX):
                    raise SerializationError(
                        f"bundle array entry {key!r} lacks the "
                        f"{_ARRAY_KEY_PREFIX!r} key prefix"
                    )
                arrays[key[len(_ARRAY_KEY_PREFIX):]] = archive[key]
    except SerializationError:
        raise
    except (OSError, ValueError, zipfile.BadZipFile, zlib.error) as exc:
        # Inner-zip CRC/deflate failures surface here when the npz bytes
        # are corrupt in a way that still matches the recorded checksum.
        raise SerializationError(f"cannot decode bundle arrays: {exc}") from exc
    return arrays


def _read_arrays_v3(bundle: zipfile.ZipFile, manifest: dict) -> dict[str, np.ndarray]:
    """Decode the version-3 per-array ``arrays/<key>.npy`` members."""
    checksums = manifest.get("array_checksums")
    if not isinstance(checksums, dict):
        raise SerializationError("bundle manifest missing field: 'array_checksums'")
    present = set()
    for name in bundle.namelist():
        if not name.startswith(_ARRAY_DIR) or name == _ARRAY_DIR:
            continue
        if not name.endswith(_ARRAY_SUFFIX):
            raise SerializationError(
                f"unexpected bundle array member {name!r} (not a .npy file)"
            )
        present.add(name[len(_ARRAY_DIR):-len(_ARRAY_SUFFIX)])
    expected = set(checksums)
    if present != expected:
        missing = sorted(expected - present)
        extra = sorted(present - expected)
        raise SerializationError(
            "bundle array members disagree with the manifest "
            f"(missing={missing}, unexpected={extra})"
        )
    arrays: dict[str, np.ndarray] = {}
    for key in sorted(expected):
        raw = bundle.read(_array_member(key))
        if hashlib.sha256(raw).hexdigest() != checksums[key]:
            raise SerializationError(
                f"bundle array checksum mismatch for {key!r} — the member "
                "was modified after the checkpoint was written"
            )
        try:
            arrays[key] = np.lib.format.read_array(
                io.BytesIO(raw), allow_pickle=False
            )
        except (OSError, ValueError) as exc:
            raise SerializationError(
                f"cannot decode bundle array {key!r}: {exc}"
            ) from exc
    return arrays
