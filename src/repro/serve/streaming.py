"""True-online serving: one report column in, one release out.

The offline drivers (:meth:`CumulativeSynthesizer.run` /
:meth:`FixedWindowSynthesizer.run`) replay a fully materialized panel.
:class:`StreamingSynthesizer` is the serving-side wrapper for the model
the paper actually describes: the curator observes one ``(n,)`` report
column per round — or one ``(n, d)`` :class:`~repro.types.AttributeFrame`
for multi-attribute streams — no panel up front — and must publish after
every round.  It adds the two things a long-lived service needs on top
of the synthesizers' incremental ``observe`` step:

* **durable state** — :meth:`checkpoint` serializes the complete
  mid-stream state (counter-bank arrays, monotonized threshold table,
  synthetic store, zCDP ledger, and every RNG bit-generator state) to a
  versioned bundle, and :meth:`restore` resumes from it with
  byte-identical future releases, noise included;
* **a uniform round API** — :meth:`observe` works identically for
  every algorithm and both counter engines, and per-round releases are
  bit-exact (noiseless mode) with the equivalent offline ``run()`` on
  the concatenated panel.

Example
-------
::

    from repro.serve import StreamingSynthesizer

    service = StreamingSynthesizer.cumulative(horizon=12, rho=0.005, seed=0)
    for column in arriving_columns:          # one (n,) bit vector per round
        release = service.observe(column)
        publish(release.threshold_table())
    service.checkpoint("state.ckpt")         # survive a restart
    service = StreamingSynthesizer.restore("state.ckpt")
"""

from __future__ import annotations


from repro.core.categorical_window import CategoricalWindowSynthesizer
from repro.core.cumulative import CumulativeSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.core.multi_attribute import MultiAttributeSynthesizer
from repro.exceptions import ConfigurationError, SerializationError
from repro.rng import SeedLike
from repro.serve.checkpoint import read_bundle, write_bundle

__all__ = ["StreamingSynthesizer"]

#: Maps the ``algorithm`` tag in a checkpoint config to the synthesizer class.
_ALGORITHMS = {
    "cumulative": CumulativeSynthesizer,
    "fixed_window": FixedWindowSynthesizer,
    "categorical_window": CategoricalWindowSynthesizer,
    "multi_attribute": MultiAttributeSynthesizer,
}


class StreamingSynthesizer:
    """Online round-by-round wrapper around a continual synthesizer.

    Parameters
    ----------
    synthesizer:
        A :class:`~repro.core.cumulative.CumulativeSynthesizer`,
        :class:`~repro.core.fixed_window.FixedWindowSynthesizer`,
        :class:`~repro.core.categorical_window.CategoricalWindowSynthesizer`,
        or :class:`~repro.core.multi_attribute.MultiAttributeSynthesizer`
        — fresh or mid-stream; the wrapper takes over driving it.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``synthesizer`` is not one of the supported classes.

    Notes
    -----
    The wrapper adds no privacy cost of its own: every noisy release is
    still charged to the wrapped synthesizer's zCDP ledger, and
    checkpoint/restore is pure state copying (no fresh randomness), so
    the privacy guarantee of a resumed stream equals the uninterrupted
    one.
    """

    def __init__(self, synthesizer):
        if not isinstance(synthesizer, tuple(_ALGORITHMS.values())):
            raise ConfigurationError(
                "StreamingSynthesizer wraps a CumulativeSynthesizer, "
                "FixedWindowSynthesizer, CategoricalWindowSynthesizer, or "
                f"MultiAttributeSynthesizer, got {type(synthesizer).__name__}"
            )
        self._synthesizer = synthesizer

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def cumulative(
        cls, horizon: int, rho: float, *, seed: SeedLike = None, **kwargs
    ) -> "StreamingSynthesizer":
        """Build a streaming Algorithm-2 (cumulative queries) service.

        Parameters
        ----------
        horizon:
            Known time horizon ``T``.
        rho:
            Total zCDP budget (``math.inf`` disables noise).
        seed:
            Seed for all randomness (noise and synthetic records).
        **kwargs:
            Forwarded to :class:`~repro.core.cumulative.CumulativeSynthesizer`
            (``counter``, ``budget``, ``engine``, ``noise_method``, ...).

        Returns
        -------
        StreamingSynthesizer
            A fresh service expecting round 1.
        """
        return cls(CumulativeSynthesizer(horizon, rho, seed=seed, **kwargs))

    @classmethod
    def fixed_window(
        cls, horizon: int, window: int, rho: float, *, seed: SeedLike = None, **kwargs
    ) -> "StreamingSynthesizer":
        """Build a streaming Algorithm-1 (fixed-window queries) service.

        Parameters
        ----------
        horizon:
            Known time horizon ``T``.
        window:
            Window width ``k``.
        rho:
            Total zCDP budget (``math.inf`` disables noise).
        seed:
            Seed for all randomness.
        **kwargs:
            Forwarded to
            :class:`~repro.core.fixed_window.FixedWindowSynthesizer`.

        Returns
        -------
        StreamingSynthesizer
            A fresh service expecting round 1.
        """
        return cls(FixedWindowSynthesizer(horizon, window, rho, seed=seed, **kwargs))

    @classmethod
    def categorical_window(
        cls,
        horizon: int,
        window: int,
        alphabet: int,
        rho: float,
        *,
        seed: SeedLike = None,
        **kwargs,
    ) -> "StreamingSynthesizer":
        """Build a streaming categorical fixed-window service.

        The multi-category generalization of :meth:`fixed_window`
        (employment status, program-participation codes, ...): one
        report in ``{0, ..., alphabet - 1}`` per active individual per
        round, with the same churn, checkpoint, and sharding surface as
        the binary algorithms.

        Parameters
        ----------
        horizon:
            Known time horizon ``T``.
        window:
            Window width ``k``.
        alphabet:
            Number of categories ``q >= 2``.
        rho:
            Total zCDP budget (``math.inf`` disables noise).
        seed:
            Seed for all randomness.
        **kwargs:
            Forwarded to
            :class:`~repro.core.categorical_window.CategoricalWindowSynthesizer`
            (``engine``, ``n_pad``, ``noise_method``, ...).

        Returns
        -------
        StreamingSynthesizer
            A fresh service expecting round 1.
        """
        return cls(
            CategoricalWindowSynthesizer(horizon, window, alphabet, rho, seed=seed, **kwargs)
        )

    @classmethod
    def multi_attribute(
        cls,
        horizon: int,
        window: int,
        rho: float,
        *,
        attributes=None,
        seed: SeedLike = None,
        **kwargs,
    ) -> "StreamingSynthesizer":
        """Build a streaming multi-attribute service.

        One :class:`~repro.types.AttributeFrame` (or ``name -> column``
        mapping, or ``(n, d)`` matrix) per round; per-attribute window
        engines over a shared population and one zCDP budget, with
        cross-attribute marginals — see
        :class:`~repro.core.multi_attribute.MultiAttributeSynthesizer`.

        Parameters
        ----------
        horizon:
            Known time horizon ``T``.
        window:
            Shared window width ``k``.
        rho:
            Total zCDP budget, split over attributes and cross pairs
            (``math.inf`` disables noise).
        attributes:
            Attribute declarations —
            :class:`~repro.core.multi_attribute.AttributeSpec` instances,
            mappings, or bare names.
        seed:
            Seed for all randomness.
        **kwargs:
            Forwarded to
            :class:`~repro.core.multi_attribute.MultiAttributeSynthesizer`
            (``cross``, ``cross_weight``, ``noise_method``, ...).

        Returns
        -------
        StreamingSynthesizer
            A fresh service expecting round 1.
        """
        return cls(
            MultiAttributeSynthesizer(
                horizon, window, rho, attributes=attributes, seed=seed, **kwargs
            )
        )

    # ------------------------------------------------------------------
    # Serving API
    # ------------------------------------------------------------------

    @property
    def synthesizer(self):
        """The wrapped synthesizer (shared, not a copy)."""
        return self._synthesizer

    @property
    def algorithm(self) -> str:
        """The wrapped synthesizer's checkpoint tag (``"cumulative"``, ...)."""
        for name, cls in _ALGORITHMS.items():
            if isinstance(self._synthesizer, cls):
                return name
        raise ConfigurationError(  # pragma: no cover - guarded by __init__
            f"unsupported synthesizer {type(self._synthesizer).__name__}"
        )

    @property
    def t(self) -> int:
        """Rounds observed so far."""
        return self._synthesizer.t

    @property
    def horizon(self) -> int:
        """Total rounds the stream will carry."""
        return self._synthesizer.horizon

    @property
    def rounds_remaining(self) -> int:
        """Rounds the service will still accept."""
        return self.horizon - self.t

    @property
    def release(self):
        """The current release view (everything published so far)."""
        return self._synthesizer.release

    def observe(self, data, *, entrants: int = 0, exits=None):
        """Ingest the next round's reports and publish.

        Parameters
        ----------
        data:
            The round-``t`` report vector ``D_t``: one entry per
            *currently active* individual (ascending id order) — 0/1
            for the binary algorithms, ``{0, ..., q-1}`` for the
            categorical one, or an ``(n, d)``
            :class:`~repro.types.AttributeFrame` (or ``name -> column``
            mapping) for the multi-attribute service.  With no churn
            declared, every round must present the same population size.
        entrants:
            Individuals entering this round; they report in the column's
            final ``entrants`` entries and receive fresh ids.  Their
            pre-entry history is the structural all-zero report (the
            zero-fill convention of :mod:`repro.core.population`).
        exits:
            Ids of previously active individuals absent from this round
            on.  Exits are permanent; re-entry is rejected.

        Returns
        -------
        Release
            The updated release view.  Per-round outputs are bit-exact
            (noiseless mode) with the offline ``run()`` on the
            concatenated panel — ``observe`` *is* ``run()``'s loop
            body, extracted — and zero-churn calls are bit-exact with
            the fixed-population path.

        Raises
        ------
        repro.exceptions.DataValidationError
            On out-of-alphabet input, a column length that disagrees
            with the declared churn, rounds past the horizon, or invalid
            churn declarations.
        """
        return self._synthesizer.observe(data, entrants=entrants, exits=exits)

    def lifespans(self):
        """Per-individual ``(entry_round, exit_round)`` pairs so far.

        Returns
        -------
        numpy.ndarray
            Shape ``(n_ever, 2)``; ``exit_round`` 0 marks a still-active
            individual.  The lifespan table travels inside
            :meth:`checkpoint` bundles, so a restored service continues
            the same churn history.
        """
        return self._synthesizer.lifespans()

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Digest of the complete serializable state, RNG included.

        Returns
        -------
        str
            A hex SHA-256 over the same config/state a :meth:`checkpoint`
            bundle captures (every state array hashed byte-for-byte).
            Two services with equal fingerprints write byte-identical
            checkpoint bundles and produce byte-identical future
            releases.  The release journal stores one fingerprint per
            shard per round, which is how crash recovery *proves* a
            replayed round reproduced the original published state
            instead of silently re-noising it.
        """
        from repro.serve.checkpoint import state_fingerprint

        return state_fingerprint(
            self._synthesizer.config_dict(),
            self._synthesizer.state_dict(copy=False),
        )

    def checkpoint(self, path) -> None:
        """Serialize the full mid-stream state to a versioned bundle.

        Parameters
        ----------
        path:
            Target file path (or writable binary file object).  The
            bundle is a zip with a ``manifest.json`` and one streamed
            ``arrays/<key>.npy`` member per state array — see
            :mod:`repro.serve.checkpoint` and the docs' checkpoint-format
            page.

        Raises
        ------
        repro.exceptions.SerializationError
            If the state cannot be represented in the bundle format.

        Notes
        -----
        A synthesizer restored from the bundle continues the stream with
        *byte-identical* releases — the bundle captures every RNG
        bit-generator state, the counter engine's internal buffers, the
        monotonized threshold table (or released histograms), the
        synthetic store, and the zCDP ledger.
        """
        # copy=False: the writer streams each array straight into the zip,
        # so there is no need to materialize a second copy of the state —
        # the bundle is consumed before control returns to the caller.
        write_bundle(
            path,
            kind="streaming",
            config=self._synthesizer.config_dict(),
            state=self._synthesizer.state_dict(copy=False),
        )

    @classmethod
    def restore(cls, path) -> "StreamingSynthesizer":
        """Resume a service from a :meth:`checkpoint` bundle.

        Parameters
        ----------
        path:
            Bundle file path (or readable binary file object).

        Returns
        -------
        StreamingSynthesizer
            A service continuing at the checkpointed round whose future
            releases are byte-identical to the uninterrupted stream's.

        Raises
        ------
        repro.exceptions.SerializationError
            If the bundle is corrupt, tampered with, version-mismatched,
            or names an unknown algorithm.
        """
        config, state = read_bundle(path, kind="streaming")
        try:
            algorithm = config["algorithm"]
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"bundle config missing algorithm: {exc}") from exc
        try:
            synthesizer_cls = _ALGORITHMS[algorithm]
        except KeyError:
            raise SerializationError(
                f"unknown algorithm {algorithm!r}; expected one of "
                f"{sorted(_ALGORITHMS)}"
            ) from None
        synthesizer = synthesizer_cls.from_config(config)
        synthesizer.load_state(state)
        return cls(synthesizer)

    def __repr__(self) -> str:
        return (
            f"StreamingSynthesizer(algorithm={self.algorithm!r}, "
            f"t={self.t}/{self.horizon})"
        )
