"""Multi-attribute record streams behind the unified Synthesizer protocol.

The paper develops its continual-release machinery for a single attribute
stream (one binary or categorical report per individual per round).  Real
longitudinal collections — SIPP being the running example — carry several
attributes at once: employment status *and* income bracket, say.  This
module composes one :class:`~repro.core.window_engine.WindowEngine` per
attribute over a shared population and a single zCDP budget:

* **One engine per attribute.**  Binary attributes run the bit-exact
  :class:`~repro.core.fixed_window.FixedWindowSynthesizer`; larger
  alphabets run :class:`~repro.core.categorical_window.CategoricalWindowSynthesizer`.
  Each engine keeps its own deterministic mirror of the shared
  :class:`~repro.core.population.PopulationLedger` (identical
  admit/retire sequences), so churn (``entrants=`` / ``exits=``) applies
  row-wise to every attribute at once.
* **One budget, split by weight.**  The total ``rho`` is divided
  ``rho_c = rho * w_c / W`` over the attribute engines and the
  cross-attribute mechanisms (``W`` the sum of all weights); each
  component charges its own :class:`~repro.dp.accountant.ZCDPAccountant`
  and the component spends sum back to ``rho`` after a full run.
* **Cross-attribute queries via marginal-based noising.**  For each
  configured attribute pair the synthesizer releases, every round, a
  discrete-Gaussian-noised joint histogram of the current reports
  (``q_a * q_b`` cells), from which
  :meth:`MultiAttributeRelease.cross_marginal` derives a normalized
  two-way marginal — e.g. employment status x income bracket.
* **Row-consistent synthetic records.**
  :meth:`MultiAttributeRelease.synthetic_records` draws one latent
  uniform per synthetic row and inverts every attribute's released
  round-``t`` marginal at that same uniform (a comonotone coupling), so
  each row is a coherent multi-attribute record whose per-attribute
  histograms match the released ones.

With a single attribute and no cross pairs the composition is **bit-exact**
with the standalone engine: the sole engine receives the full budget and
the synthesizer's own generator object (``as_generator`` passes
generators through unchanged), so noise draws, record randomness, ledger,
and checkpoints are identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

import numpy as np

from repro.core.categorical_window import CategoricalWindowSynthesizer
from repro.core.fixed_window import FixedWindowSynthesizer
from repro.core.population import validate_binary_column
from repro.dp.accountant import ZCDPAccountant
from repro.dp.mechanisms import GaussianHistogramMechanism
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
    SerializationError,
)
from repro.rng import (
    SeedLike,
    as_generator,
    generator_state,
    restore_generator_state,
    spawn,
)
from repro.types import AttributeFrame, as_frame

__all__ = ["AttributeSpec", "MultiAttributeSynthesizer", "MultiAttributeRelease"]


@dataclass(frozen=True)
class AttributeSpec:
    """Per-attribute configuration of a multi-attribute synthesizer.

    Parameters
    ----------
    name:
        Attribute name (must be unique within a synthesizer).
    alphabet:
        Number of categories ``q >= 2``; 2 selects the bit-exact binary
        engine.
    window:
        Per-attribute window width override (``None``: the synthesizer's
        shared window).
    weight:
        Relative share of the total zCDP budget (positive; weights are
        normalized over attributes plus cross pairs).
    n_pad:
        Padding per bin for this attribute's engine (``None``: the
        Theorem 3.2 auto-sized value).
    """

    name: str
    alphabet: int = 2
    window: int | None = None
    weight: float = 1.0
    n_pad: int | None = None

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("attribute name must be non-empty")
        if self.alphabet < 2:
            raise ConfigurationError(
                f"alphabet must be at least 2, got {self.alphabet} for {self.name!r}"
            )
        if self.window is not None and self.window < 1:
            raise ConfigurationError(
                f"window must be positive, got {self.window} for {self.name!r}"
            )
        if not self.weight > 0:
            raise ConfigurationError(
                f"weight must be positive, got {self.weight} for {self.name!r}"
            )
        if self.n_pad is not None and self.n_pad < 0:
            raise ConfigurationError(
                f"n_pad must be non-negative, got {self.n_pad} for {self.name!r}"
            )

    def to_dict(self) -> dict:
        """JSON-able form (``window``/``n_pad`` may still be ``None``)."""
        return {
            "name": self.name,
            "alphabet": int(self.alphabet),
            "window": None if self.window is None else int(self.window),
            "weight": float(self.weight),
            "n_pad": None if self.n_pad is None else int(self.n_pad),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AttributeSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        try:
            return cls(
                name=str(payload["name"]),
                alphabet=int(payload.get("alphabet", 2)),
                window=(
                    None if payload.get("window") is None else int(payload["window"])
                ),
                weight=float(payload.get("weight", 1.0)),
                n_pad=None if payload.get("n_pad") is None else int(payload["n_pad"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid attribute spec: {exc}") from exc


def _coerce_spec(item) -> AttributeSpec:
    """Accept specs, mappings, or bare names in the ``attributes=`` list."""
    if isinstance(item, AttributeSpec):
        return item
    if isinstance(item, Mapping):
        return AttributeSpec.from_dict(item)
    if isinstance(item, str):
        return AttributeSpec(name=item)
    raise ConfigurationError(
        f"attributes entries must be AttributeSpec, mapping, or name, got "
        f"{type(item).__name__}"
    )


class _CompositeAccountant:
    """Live read-only view summing every component ledger.

    Mirrors the :class:`~repro.dp.accountant.ZCDPAccountant` read surface
    (``total_rho`` / ``spent`` / ``remaining`` / ``charges``) so the
    serving layer's ledger plumbing works unchanged; charging happens in
    the components, never here.
    """

    def __init__(self, synthesizer: "MultiAttributeSynthesizer"):
        self._synth = synthesizer

    def _components(self):
        for name, engine in zip(self._synth.attribute_names, self._synth._engines):
            if engine.accountant is not None:
                yield name, engine.accountant
        for pair, accountant in self._synth._cross_accountants.items():
            if accountant is not None:
                yield f"{pair[0]}x{pair[1]}", accountant

    @property
    def total_rho(self) -> float:
        """The configured total budget."""
        return self._synth.rho

    @property
    def spent(self) -> float:
        """Total zCDP spent across every attribute and cross pair."""
        return math.fsum(acct.spent for _, acct in self._components())

    @property
    def remaining(self) -> float:
        """Budget left (never negative)."""
        return max(0.0, self.total_rho - self.spent)

    @property
    def charges(self) -> tuple[tuple[str, float], ...]:
        """Every component charge, labels prefixed with the component."""
        merged: list[tuple[str, float]] = []
        for prefix, acct in self._components():
            merged.extend((f"{prefix}: {label}", rho) for label, rho in acct.charges)
        return tuple(merged)

    def __repr__(self) -> str:
        return (
            f"_CompositeAccountant(total_rho={self.total_rho!r}, "
            f"spent={self.spent:.6g})"
        )


class MultiAttributeRelease:
    """Release view over every attribute engine plus the cross marginals.

    Parameters
    ----------
    synthesizer:
        The owning :class:`MultiAttributeSynthesizer`; the release is a
        live view of its state (one cached instance per synthesizer),
        not a frozen copy.
    """

    #: Release-protocol capability flag: ``answer`` accepts ``debias=``.
    debias_aware = True

    def __init__(self, synthesizer: "MultiAttributeSynthesizer"):
        self._synth = synthesizer

    # -- metadata ------------------------------------------------------

    @property
    def t(self) -> int:
        """Rounds observed so far."""
        return self._synth.t

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """The attribute names, in declaration order."""
        return self._synth.attribute_names

    def attribute(self, name):
        """The single-attribute release view for ``name`` (or column index)."""
        return self._synth._engine_for(name).release

    def population(self, t: int) -> int:
        """Real individuals admitted by round ``t`` (shared across attributes)."""
        return self._synth._engines[0].release.population(t)

    def synthetic_population(self, t: int) -> int:
        """Synthetic rows drawable at round ``t`` (min over attributes)."""
        return min(
            engine.release.synthetic_population(t) for engine in self._synth._engines
        )

    @property
    def n_synthetic(self) -> int:
        """Synthetic rows currently materialized (min over attributes)."""
        return min(engine.release.n_synthetic for engine in self._synth._engines)

    # -- query answering -----------------------------------------------

    def answer(self, query, t: int, debias: bool = True, *, attribute=None) -> float:
        """Answer a window query on one attribute's release.

        Parameters
        ----------
        query:
            A window query over the target attribute's alphabet.
        t:
            Round to answer at.
        debias:
            Forwarded to the attribute release (subtract padding,
            renormalize by the real population; default).
        attribute:
            Which attribute to answer on (name or column index).
            ``None`` is allowed only for single-attribute synthesizers.
        """
        if attribute is None:
            if self._synth.width != 1:
                raise ConfigurationError(
                    "answer() needs attribute= when the synthesizer holds "
                    f"{self._synth.width} attributes {self.attribute_names}"
                )
            attribute = 0
        return self.attribute(attribute).answer(query, t, debias=debias)

    def answer_batch(
        self, queries, times, debias: bool = True, *, attribute=None
    ) -> np.ndarray:
        """Answer a workload on one attribute's release as a grid.

        Same attribute resolution as :meth:`answer`; the per-attribute
        release runs the compiled batch path (and owns the
        release-versioned answer cache), so the grid is bit-identical
        with looping :meth:`answer` over the workload.
        """
        if attribute is None:
            if self._synth.width != 1:
                raise ConfigurationError(
                    "answer_batch() needs attribute= when the synthesizer holds "
                    f"{self._synth.width} attributes {self.attribute_names}"
                )
            attribute = 0
        return self.attribute(attribute).answer_batch(queries, times, debias=debias)

    # -- cross-attribute marginals -------------------------------------

    def cross_counts(self, a, b, t: int) -> np.ndarray:
        """The noisy joint counts released for pair ``(a, b)`` at round ``t``.

        Returns the length-``q_a * q_b`` noisy histogram (row-major in
        ``a``); the pair may be requested in either order — the released
        table is transposed to match the requested orientation.
        """
        name_a = self._synth._resolve_name(a)
        name_b = self._synth._resolve_name(b)
        pair, transposed = self._synth._resolve_pair(name_a, name_b)
        try:
            counts = self._synth._cross_counts[pair][t]
        except KeyError:
            raise NotFittedError(
                f"no cross histogram released for {pair[0]} x {pair[1]} at t={t}"
            ) from None
        q_first = self._synth._alphabet_of(pair[0])
        q_second = self._synth._alphabet_of(pair[1])
        table = counts.reshape(q_first, q_second)
        if transposed:
            table = table.T
        return np.ascontiguousarray(table).reshape(-1).copy()

    def cross_marginal(self, a, b, t: int) -> np.ndarray:
        """Normalized two-way marginal for pair ``(a, b)`` at round ``t``.

        Noisy counts are clamped at zero and normalized to sum to one;
        if every cell clamps to zero the uniform distribution is
        returned.
        """
        counts = np.maximum(self.cross_counts(a, b, t), 0).astype(np.float64)
        total = counts.sum()
        if total <= 0:
            return np.full(counts.shape, 1.0 / counts.size)
        return counts / total

    # -- synthetic records ---------------------------------------------

    def synthetic_records(self, t: int | None = None) -> AttributeFrame:
        """Row-consistent synthetic records at round ``t`` (default: latest).

        Single-attribute synthesizers return the engine's synthetic
        column verbatim.  With ``d >= 2`` one latent uniform is drawn per
        row and every attribute's released round-``t`` marginal is
        inverted at that same uniform (a comonotone coupling): rows are
        coherent multi-attribute records, each attribute's histogram
        follows its released marginal, and repeated calls (and calls
        after a checkpoint/restore) return the identical frame.
        """
        synth = self._synth
        if t is None:
            t = synth.t
        names = synth.attribute_names
        if synth.width == 1:
            panel = synth._engines[0].release.synthetic_data(t)
            m = synth._engines[0].release.synthetic_population(t)
            return AttributeFrame(panel.matrix[:m, t - 1], names)
        marginals = []
        for engine in synth._engines:
            histogram = engine.release.histogram(t)
            q = engine.alphabet
            codes = np.arange(histogram.size)
            counts = np.bincount(codes % q, weights=histogram, minlength=q)
            marginals.append(counts)
        m = int(min(counts.sum() for counts in marginals))
        generator = synth._records_generator(t)
        uniforms = np.sort(generator.random(m))
        columns = []
        for counts in marginals:
            total = counts.sum()
            cdf = np.cumsum(counts) / total if total > 0 else np.linspace(
                1.0 / counts.size, 1.0, counts.size
            )
            columns.append(np.searchsorted(cdf, uniforms, side="right").astype(np.int64))
        return AttributeFrame(np.column_stack(columns), names)

    def __repr__(self) -> str:
        return (
            f"MultiAttributeRelease(attributes={list(self.attribute_names)}, "
            f"t={self.t})"
        )


class MultiAttributeSynthesizer:
    """Continual DP synthesis of multi-attribute record streams.

    Composes one fixed-window engine per attribute over a shared
    population and a single zCDP budget; see the module docstring for
    the composition rules.  The class implements the full
    :class:`~repro.types.Synthesizer` protocol — ``observe`` / ``run`` /
    ``release`` / ``config_dict`` / ``state_dict`` (plus ``load_state`` /
    ``from_config``) — so the serving stack (streaming, sharding, every
    executor, checkpoints) drives it exactly like the single-attribute
    engines.

    Parameters
    ----------
    horizon:
        Known time horizon ``T``.
    window:
        Shared window width ``k`` (per-attribute override via
        :class:`AttributeSpec`).
    rho:
        Total zCDP budget for the entire run, split over attributes and
        cross pairs by weight; ``math.inf`` disables noise everywhere.
    attributes:
        Attribute declarations — :class:`AttributeSpec` instances,
        mappings (``{"name": ..., "alphabet": ...}``), or bare names
        (binary, weight 1).  Default: one binary attribute ``attr0``.
    cross:
        Attribute pairs to release noisy joint histograms for:
        ``None`` (default) selects every unordered pair when ``d >= 2``;
        an explicit sequence of ``(name_a, name_b)`` pairs restricts it;
        ``()`` disables cross marginals entirely.
    cross_weight:
        Budget weight of *each* cross pair relative to the attribute
        weights.
    beta:
        Target failure probability used when auto-sizing per-engine
        padding.
    on_negative:
        Negative-count fallback forwarded to every engine.
    sensitivity:
        Histogram L2 sensitivity forwarded to every mechanism.
    seed:
        Seed or generator for all randomness.  With one attribute and no
        cross pairs the sole engine consumes this stream directly and is
        bit-exact with the standalone engine.
    noise_method:
        ``"exact"`` or ``"vectorized"`` discrete Gaussian backend.
    engine:
        Projection/extension engine for categorical attributes
        (``None`` consults ``$REPRO_ENGINE``).
    """

    #: Tag stored in checkpoint configs.
    algorithm = "multi_attribute"

    def __init__(
        self,
        horizon: int,
        window: int,
        rho: float,
        *,
        attributes: Sequence | None = None,
        cross: Sequence | None = None,
        cross_weight: float = 1.0,
        beta: float = 0.05,
        on_negative: str = "redistribute",
        sensitivity: float = 1.0,
        seed: SeedLike = None,
        noise_method: str = "exact",
        engine: str | None = None,
    ):
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if not 1 <= window <= horizon:
            raise ConfigurationError(
                f"window must lie in [1, horizon={horizon}], got {window}"
            )
        if not rho > 0:
            raise ConfigurationError(f"rho must be positive, got {rho}")
        if not cross_weight > 0:
            raise ConfigurationError(
                f"cross_weight must be positive, got {cross_weight}"
            )
        self.horizon = int(horizon)
        self.window = int(window)
        self.rho = float(rho)
        self.cross_weight = float(cross_weight)
        self.on_negative = str(on_negative)
        self.sensitivity = float(sensitivity)
        self.noise_method = str(noise_method)

        if attributes is None:
            attributes = (AttributeSpec(name="attr0"),)
        self._specs = tuple(_coerce_spec(item) for item in attributes)
        if not self._specs:
            raise ConfigurationError("attributes must declare at least one attribute")
        names = tuple(spec.name for spec in self._specs)
        if len(set(names)) != len(names):
            raise ConfigurationError(f"attribute names must be unique: {names}")
        self._names = names
        self._index = {name: i for i, name in enumerate(names)}
        for spec in self._specs:
            if spec.window is not None and spec.window > self.horizon:
                raise ConfigurationError(
                    f"window {spec.window} for {spec.name!r} exceeds horizon "
                    f"{self.horizon}"
                )

        self._pairs = self._normalize_cross(cross)
        self._generator = as_generator(seed)

        n_pairs = len(self._pairs)
        weight_total = math.fsum(spec.weight for spec in self._specs)
        weight_total += self.cross_weight * n_pairs
        infinite = math.isinf(self.rho)
        sole = len(self._specs) == 1 and not self._pairs
        if sole:
            # Bit-exactness anchor: the sole engine gets the whole budget
            # and this synthesizer's own generator object, so its noise
            # and record streams match the standalone engine exactly.
            engine_rhos = [self.rho]
            engine_seeds: list = [self._generator]
            pair_generators: list = []
            self._records_entropy: int | None = None
        else:
            engine_rhos = [
                math.inf if infinite else self.rho * spec.weight / weight_total
                for spec in self._specs
            ]
            children = spawn(self._generator, len(self._specs) + n_pairs + 1)
            engine_seeds = children[: len(self._specs)]
            pair_generators = children[len(self._specs) : len(self._specs) + n_pairs]
            self._records_entropy = int(
                children[-1].integers(0, 2**63 - 1)
            )
        rho_pair = (
            math.inf
            if infinite
            else self.rho * self.cross_weight / weight_total
            if n_pairs
            else 0.0
        )
        self.rho_per_pair = rho_pair if n_pairs else None

        self._engines = []
        for spec, spec_rho, spec_seed in zip(self._specs, engine_rhos, engine_seeds):
            spec_window = self.window if spec.window is None else spec.window
            if spec.alphabet == 2:
                built = FixedWindowSynthesizer(
                    self.horizon,
                    spec_window,
                    spec_rho,
                    n_pad=spec.n_pad,
                    beta=beta,
                    on_negative=self.on_negative,
                    sensitivity=self.sensitivity,
                    seed=spec_seed,
                    noise_method=self.noise_method,
                )
            else:
                built = CategoricalWindowSynthesizer(
                    self.horizon,
                    spec_window,
                    spec.alphabet,
                    spec_rho,
                    n_pad=spec.n_pad,
                    beta=beta,
                    on_negative=self.on_negative,
                    sensitivity=self.sensitivity,
                    seed=spec_seed,
                    noise_method=self.noise_method,
                    engine=engine,
                )
            self._engines.append(built)
        #: Resolved projection engine (reported in checkpoint configs).
        self.engine = next(
            (e.engine for e in self._engines if e.alphabet != 2), "vectorized"
        )

        self._cross_generators: dict[tuple[str, str], np.random.Generator] = {}
        self._cross_mechanisms: dict[tuple[str, str], GaussianHistogramMechanism] = {}
        self._cross_accountants: dict[tuple[str, str], ZCDPAccountant | None] = {}
        self._cross_counts: dict[tuple[str, str], dict[int, np.ndarray]] = {}
        for pair, pair_generator in zip(self._pairs, pair_generators):
            n_bins = self._alphabet_of(pair[0]) * self._alphabet_of(pair[1])
            if infinite:
                sigma_sq = Fraction(0)
            else:
                sigma_sq = Fraction(self.horizon) / (
                    2 * Fraction(rho_pair).limit_denominator(10**12)
                )
            self._cross_generators[pair] = pair_generator
            self._cross_mechanisms[pair] = GaussianHistogramMechanism(
                n_bins=n_bins,
                sigma_sq=sigma_sq,
                sensitivity=self.sensitivity,
                seed=pair_generator,
                method=self.noise_method,
            )
            self._cross_accountants[pair] = (
                None if infinite else ZCDPAccountant(rho_pair)
            )
            self._cross_counts[pair] = {}

        self._t = 0
        self._release_view = MultiAttributeRelease(self)

    # -- declaration helpers -------------------------------------------

    def _normalize_cross(self, cross) -> tuple[tuple[str, str], ...]:
        """Resolve the ``cross=`` parameter into ordered, unique pairs."""
        if cross is None:
            if len(self._names) < 2:
                return ()
            return tuple(
                (self._names[i], self._names[j])
                for i in range(len(self._names))
                for j in range(i + 1, len(self._names))
            )
        pairs = []
        seen = set()
        for item in cross:
            pair = tuple(item)
            if len(pair) != 2:
                raise ConfigurationError(
                    f"cross pairs must name two attributes, got {item!r}"
                )
            name_a = self._resolve_name(pair[0])
            name_b = self._resolve_name(pair[1])
            if name_a == name_b:
                raise ConfigurationError(
                    f"cross pair must name two distinct attributes, got {item!r}"
                )
            if self._index[name_a] > self._index[name_b]:
                name_a, name_b = name_b, name_a
            if (name_a, name_b) in seen:
                raise ConfigurationError(
                    f"duplicate cross pair ({name_a!r}, {name_b!r})"
                )
            seen.add((name_a, name_b))
            pairs.append((name_a, name_b))
        return tuple(pairs)

    def _resolve_name(self, attribute) -> str:
        """Normalize a name or column index into a declared attribute name."""
        if isinstance(attribute, str):
            if attribute not in self._index:
                raise ConfigurationError(
                    f"unknown attribute {attribute!r}; declared: {self._names}"
                )
            return attribute
        index = int(attribute)
        if not 0 <= index < len(self._names):
            raise ConfigurationError(
                f"attribute index {index} outside [0, {len(self._names)})"
            )
        return self._names[index]

    def _resolve_pair(self, name_a: str, name_b: str) -> tuple[tuple[str, str], bool]:
        """Map an (a, b) request onto the stored pair key + transpose flag."""
        if self._index[name_a] <= self._index[name_b]:
            pair, transposed = (name_a, name_b), False
        else:
            pair, transposed = (name_b, name_a), True
        if pair not in self._cross_counts:
            raise ConfigurationError(
                f"no cross marginal configured for ({name_a!r}, {name_b!r}); "
                f"configured pairs: {self._pairs}"
            )
        return pair, transposed

    def _engine_for(self, attribute):
        """The engine owning ``attribute`` (name or column index)."""
        return self._engines[self._index[self._resolve_name(attribute)]]

    def _alphabet_of(self, name: str) -> int:
        return self._specs[self._index[name]].alphabet

    def _records_generator(self, t: int) -> np.random.Generator:
        """Deterministic per-round generator for the record coupling."""
        if self._records_entropy is None:
            raise NotFittedError(
                "single-attribute synthesizers draw records from their engine"
            )
        return np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([self._records_entropy, int(t)]))
        )

    # -- public metadata -----------------------------------------------

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Declared attribute names, in order."""
        return self._names

    @property
    def attribute_specs(self) -> tuple[AttributeSpec, ...]:
        """Declared attribute specs, in order."""
        return self._specs

    @property
    def alphabets(self) -> tuple[int, ...]:
        """Per-attribute alphabet sizes, in declaration order."""
        return tuple(spec.alphabet for spec in self._specs)

    @property
    def width(self) -> int:
        """Number of attributes ``d``."""
        return len(self._specs)

    @property
    def cross_pairs(self) -> tuple[tuple[str, str], ...]:
        """Attribute pairs with released cross marginals."""
        return self._pairs

    @property
    def t(self) -> int:
        """Rounds observed so far."""
        return self._t

    @property
    def release(self) -> MultiAttributeRelease:
        """View of everything released so far."""
        return self._release_view

    @property
    def accountant(self):
        """Composite zCDP ledger view (``None`` when ``rho`` is infinite)."""
        if math.isinf(self.rho):
            return None
        return _CompositeAccountant(self)

    @property
    def _n(self):
        """Shared population size (serving-layer restore cross-check)."""
        return self._engines[0]._n

    @property
    def _ledger(self):
        """The authoritative population ledger (engine 0's mirror)."""
        return self._engines[0]._ledger

    def lifespans(self) -> np.ndarray:
        """Per-individual ``(admitted, retired)`` rounds (shared ledger)."""
        return self._engines[0].lifespans()

    def zcdp_spent(self) -> float:
        """Total zCDP spent across every attribute and cross pair."""
        accountant = self.accountant
        return 0.0 if accountant is None else accountant.spent

    # -- streaming -----------------------------------------------------

    def observe(self, data, *, entrants: int = 0, exits=None) -> MultiAttributeRelease:
        """Consume one round of multi-attribute reports.

        Parameters
        ----------
        data:
            An :class:`~repro.types.AttributeFrame`, a ``name -> column``
            mapping, or an ``(n, d)`` matrix in declaration order (1-D
            columns are accepted for single-attribute synthesizers).
        entrants, exits:
            Population churn, applied row-wise to every attribute at
            once (the individuals are shared).

        Notes
        -----
        All attribute columns are validated *before* any engine advances,
        so a bad column leaves the synthesizer unchanged; structural
        checks (lengths, horizon, exit ids) are identical across engines
        because their ledgers evolve in lockstep.
        """
        frame = as_frame(data, names=self._names)
        for spec in self._specs:
            column = frame.column(spec.name)
            if spec.alphabet == 2:
                validate_binary_column(column)
            elif column.size and (
                column.min() < 0 or column.max() >= spec.alphabet
            ):
                raise DataValidationError(
                    f"column entries for {spec.name!r} must lie in "
                    f"[0, {spec.alphabet})"
                )
        if self._t >= self.horizon:
            raise DataValidationError(f"horizon {self.horizon} already exhausted")
        for spec, engine in zip(self._specs, self._engines):
            engine.observe(frame.column(spec.name), entrants=entrants, exits=exits)
        self._t += 1
        for pair in self._pairs:
            col_a = frame.column(pair[0])
            col_b = frame.column(pair[1])
            q_b = self._alphabet_of(pair[1])
            codes = col_a.astype(np.int64) * q_b + col_b.astype(np.int64)
            counts = np.bincount(
                codes, minlength=self._alphabet_of(pair[0]) * q_b
            )
            accountant = self._cross_accountants[pair]
            if accountant is not None:
                accountant.charge(
                    self._cross_mechanisms[pair].rho_per_release,
                    label=f"cross histogram t={self._t}",
                )
            self._cross_counts[pair][self._t] = self._cross_mechanisms[pair].release(
                counts
            )
        return self._release_view

    def run(self, dataset) -> MultiAttributeRelease:
        """Batch driver over per-attribute panels.

        Parameters
        ----------
        dataset:
            A ``name -> panel`` mapping (each panel an ``(n, T)`` matrix
            or an object exposing ``.matrix``), or a single panel for
            single-attribute synthesizers.
        """
        if self._t:
            raise ConfigurationError("run() requires a fresh synthesizer")
        if isinstance(dataset, Mapping):
            panels = {name: dataset[name] for name in dataset}
            if tuple(panels) != self._names:
                raise DataValidationError(
                    f"dataset attributes {tuple(panels)} do not match declared "
                    f"{self._names}"
                )
        elif self.width == 1:
            panels = {self._names[0]: dataset}
        else:
            raise DataValidationError(
                "run() needs a name -> panel mapping for multi-attribute "
                "synthesizers"
            )
        matrices = {}
        n_rows = None
        for name, panel in panels.items():
            matrix = np.asarray(getattr(panel, "matrix", panel))
            if matrix.ndim != 2:
                raise DataValidationError(
                    f"panel for {name!r} must be (n, T), got shape {matrix.shape}"
                )
            if matrix.shape[1] != self.horizon:
                raise DataValidationError(
                    f"panel for {name!r} has horizon {matrix.shape[1]} != "
                    f"synthesizer horizon {self.horizon}"
                )
            if n_rows is None:
                n_rows = matrix.shape[0]
            elif matrix.shape[0] != n_rows:
                raise DataValidationError(
                    f"panel for {name!r} has {matrix.shape[0]} records, "
                    f"expected {n_rows}"
                )
            matrices[name] = matrix
        for t in range(self.horizon):
            self.observe(
                AttributeFrame.from_columns(
                    {name: matrices[name][:, t] for name in self._names}
                )
            )
        return self._release_view

    # -- checkpointing -------------------------------------------------

    def config_dict(self) -> dict:
        """The constructor arguments needed to rebuild this synthesizer.

        Per-attribute ``window``/``n_pad`` are stored resolved, so the
        rebuilt synthesizer never re-runs the auto-sizing.
        """
        attributes = []
        for spec, engine in zip(self._specs, self._engines):
            payload = spec.to_dict()
            payload["window"] = engine.window
            payload["n_pad"] = engine.padding.n_pad
            attributes.append(payload)
        return {
            "algorithm": self.algorithm,
            "horizon": self.horizon,
            "window": self.window,
            "rho": self.rho,
            "attributes": attributes,
            "cross": [list(pair) for pair in self._pairs],
            "cross_weight": self.cross_weight,
            "on_negative": self.on_negative,
            "sensitivity": self.sensitivity,
            "noise_method": self.noise_method,
            "engine": self.engine,
        }

    @classmethod
    def from_config(cls, config: dict) -> "MultiAttributeSynthesizer":
        """Rebuild a fresh synthesizer from :meth:`config_dict` output."""
        try:
            return cls(
                int(config["horizon"]),
                int(config["window"]),
                float(config["rho"]),
                attributes=[
                    AttributeSpec.from_dict(item) for item in config["attributes"]
                ],
                cross=[tuple(pair) for pair in config["cross"]],
                cross_weight=float(config["cross_weight"]),
                on_negative=str(config["on_negative"]),
                sensitivity=float(config["sensitivity"]),
                noise_method=str(config["noise_method"]),
                engine=str(config["engine"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid multi-attribute config: {exc}") from exc

    def state_dict(self, *, copy: bool = True) -> dict:
        """Snapshot of the mutable state (nested per-engine states).

        The sole-engine fast path shares its generator with engine 0, so
        the master generator state is stored once under the engine and
        referenced on load.
        """
        state: dict = {
            "t": self._t,
            "attributes": {
                name: engine.state_dict(copy=copy)
                for name, engine in zip(self._names, self._engines)
            },
        }
        if self._records_entropy is None:
            # Sole-engine fast path: the master generator IS engine 0's.
            state["shared_generator"] = True
        else:
            state["generator"] = generator_state(self._generator)
            state["records_entropy"] = self._records_entropy
        cross_state = {}
        for pair in self._pairs:
            released = self._cross_counts[pair]
            times = sorted(released)
            entry: dict = {
                "generator": generator_state(self._cross_generators[pair]),
                "released_times": times,
            }
            accountant = self._cross_accountants[pair]
            if accountant is not None:
                entry["accountant"] = accountant.to_dict()
            if times:
                stacked = np.stack([released[t] for t in times])
                entry["counts"] = stacked.copy() if copy else stacked
            cross_state[f"{pair[0]}|{pair[1]}"] = entry
        if cross_state:
            state["cross"] = cross_state
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into a fresh synthesizer."""
        if self._t:
            raise SerializationError(
                "load_state() requires a freshly constructed synthesizer"
            )
        try:
            t = int(state["t"])
            engine_states = state["attributes"]
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"invalid multi-attribute state: {exc}") from exc
        if set(engine_states) != set(self._names):
            raise SerializationError(
                f"state attributes {sorted(engine_states)} do not match "
                f"configured {sorted(self._names)}"
            )
        if self._records_entropy is None:
            if not state.get("shared_generator"):
                raise SerializationError(
                    "state was taken from a multi-stream synthesizer but this "
                    "configuration runs the sole-engine fast path"
                )
        else:
            if "generator" not in state or "records_entropy" not in state:
                raise SerializationError(
                    "multi-attribute state is missing the master generator"
                )
            restore_generator_state(self._generator, state["generator"])
            self._records_entropy = int(state["records_entropy"])
        for name, engine in zip(self._names, self._engines):
            engine.load_state(engine_states[name])
            if engine.t != t:
                raise SerializationError(
                    f"engine {name!r} restored to t={engine.t}, expected t={t}"
                )
        cross_state = state.get("cross", {})
        expected_keys = {f"{a}|{b}" for a, b in self._pairs}
        if set(cross_state) != expected_keys:
            raise SerializationError(
                f"state cross pairs {sorted(cross_state)} do not match "
                f"configured {sorted(expected_keys)}"
            )
        for pair in self._pairs:
            entry = cross_state[f"{pair[0]}|{pair[1]}"]
            try:
                restore_generator_state(
                    self._cross_generators[pair], entry["generator"]
                )
                times = [int(x) for x in entry["released_times"]]
            except (KeyError, TypeError) as exc:
                raise SerializationError(
                    f"invalid cross state for {pair}: {exc}"
                ) from exc
            if times != list(range(1, t + 1)):
                raise SerializationError(
                    f"cross pair {pair} released {times}, expected every "
                    f"round 1..{t}"
                )
            if "accountant" in entry:
                if self._cross_accountants[pair] is None:
                    raise SerializationError(
                        f"state for {pair} carries an accountant but rho is "
                        "infinite"
                    )
                self._cross_accountants[pair] = ZCDPAccountant.from_dict(
                    entry["accountant"]
                )
            elif self._cross_accountants[pair] is not None:
                raise SerializationError(
                    f"state for {pair} is missing its accountant"
                )
            if times:
                counts = np.asarray(entry["counts"])
                n_bins = self._alphabet_of(pair[0]) * self._alphabet_of(pair[1])
                if counts.shape != (len(times), n_bins):
                    raise SerializationError(
                        f"cross counts for {pair} have shape {counts.shape}, "
                        f"expected {(len(times), n_bins)}"
                    )
                self._cross_counts[pair] = {
                    time: np.array(counts[i]) for i, time in enumerate(times)
                }
        self._t = t

    def __repr__(self) -> str:
        return (
            f"MultiAttributeSynthesizer(T={self.horizon}, k={self.window}, "
            f"rho={self.rho}, attributes={list(self._names)}, "
            f"pairs={len(self._pairs)})"
        )
