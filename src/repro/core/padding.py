"""Padding for Algorithm 1.

``n_pad`` "fake" people are added to every histogram bin before noising so
that noisy counts stay positive for the whole run with probability
``1 - beta`` (Theorem 3.2 picks ``n_pad`` equal to the max-error bound).
The padding is public: analysts debias query answers by subtracting the
padding's (exactly computable) contribution.

:class:`PaddingSpec` bundles the parameters with the exact padding
arithmetic, and can materialize the padding population as de Bruijn records
(:func:`repro.data.debruijn.padding_panel`) — a concrete witness that a
dataset with exactly ``n_pad`` per bin in *every* window exists, used by the
release object to debias queries of widths other than ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.analysis.theory import default_n_pad
from repro.data.dataset import LongitudinalDataset
from repro.data.debruijn import padding_panel
from repro.exceptions import ConfigurationError
from repro.queries.base import WindowQuery

__all__ = ["PaddingSpec"]


@dataclass(frozen=True)
class PaddingSpec:
    """Public padding parameters of a fixed-window release.

    Attributes
    ----------
    window:
        Window width ``k``.
    n_pad:
        Fake people per length-``k`` bin.
    horizon:
        Time horizon ``T`` (needed to materialize padding records).
    """

    window: int
    n_pad: int
    horizon: int

    def __post_init__(self):
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if self.n_pad < 0:
            raise ConfigurationError(f"n_pad must be non-negative, got {self.n_pad}")
        if self.horizon < self.window:
            raise ConfigurationError(
                f"horizon {self.horizon} shorter than window {self.window}"
            )

    @classmethod
    def auto(
        cls, horizon: int, window: int, rho: float, beta: float = 0.05
    ) -> "PaddingSpec":
        """The Theorem 3.2 default: ``n_pad = ceil(error bound)``."""
        return cls(
            window=window,
            n_pad=default_n_pad(horizon, window, rho, beta),
            horizon=horizon,
        )

    @property
    def total_records(self) -> int:
        """Total fake people: ``n_pad * 2**k``."""
        return self.n_pad * (1 << self.window)

    def count_contribution(self, query: WindowQuery) -> float:
        """Idealized padding contribution to a query's *count* answer.

        Under the paper's "``n_pad`` fake people per bin" idealization, a
        width-``k'`` bin receives ``n_pad * 2**(k - k')`` fake people: for
        ``k' <= k`` this is exact (a width-``k'`` bin aggregates
        ``2**(k-k')`` width-``k`` bins); for ``k' > k`` it extrapolates the
        uniform-padding model (``2**(k-k')`` is fractional), matching the
        paper's convention of subtracting ``n_pad`` per noisy count.
        """
        multiplicity = 2.0 ** (self.window - query.k)
        return self.n_pad * multiplicity * query.weight_sum

    @cached_property
    def panel(self) -> LongitudinalDataset:
        """Materialized padding records (de Bruijn construction)."""
        return padding_panel(self.window, self.n_pad, self.horizon)

    def panel_count_answer(self, query: WindowQuery, t: int) -> float:
        """Padding count answer computed on the materialized records.

        Works for any query width (including ``k' > k``, where the exact
        per-bin contribution is no longer uniform); for ``k' <= k`` it
        agrees exactly with :meth:`count_contribution`.
        """
        if self.n_pad == 0:
            return 0.0
        return query.evaluate(self.panel, t) * self.panel.n_individuals
