"""Padding for Algorithm 1.

``n_pad`` "fake" people are added to every histogram bin before noising so
that noisy counts stay positive for the whole run with probability
``1 - beta`` (Theorem 3.2 picks ``n_pad`` equal to the max-error bound).
The padding is public: analysts debias query answers by subtracting the
padding's (exactly computable) contribution.

:class:`PaddingSpec` bundles the parameters with the exact padding
arithmetic for any alphabet size ``q >= 2`` (``q = 2`` is the paper's
binary panel), and can materialize the padding population as de Bruijn
records (:func:`repro.data.debruijn.padding_panel` /
:func:`repro.data.categorical.categorical_padding_panel`) — a concrete
witness that a dataset with exactly ``n_pad`` per bin in *every* window
exists, used by the release object to debias queries of widths other than
``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.analysis.theory import default_n_pad
from repro.data.debruijn import padding_panel
from repro.exceptions import ConfigurationError

__all__ = ["PaddingSpec"]


@dataclass(frozen=True)
class PaddingSpec:
    """Public padding parameters of a fixed-window release.

    Attributes
    ----------
    window:
        Window width ``k``.
    n_pad:
        Fake people per length-``k`` bin.
    horizon:
        Time horizon ``T`` (needed to materialize padding records).
    alphabet:
        Number of categories ``q >= 2`` (default 2, the binary panel);
        the histogram has ``q**k`` bins.
    """

    window: int
    n_pad: int
    horizon: int
    alphabet: int = 2

    def __post_init__(self):
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if self.n_pad < 0:
            raise ConfigurationError(f"n_pad must be non-negative, got {self.n_pad}")
        if self.horizon < self.window:
            raise ConfigurationError(
                f"horizon {self.horizon} shorter than window {self.window}"
            )
        if self.alphabet < 2:
            raise ConfigurationError(f"alphabet must be at least 2, got {self.alphabet}")

    @classmethod
    def auto(
        cls,
        horizon: int,
        window: int,
        rho: float,
        beta: float = 0.05,
        alphabet: int = 2,
    ) -> "PaddingSpec":
        """The Theorem 3.2 default: ``n_pad = ceil(error bound)``.

        Parameters
        ----------
        horizon, window, rho, beta:
            The run's parameters entering the Theorem 3.2 bound.
        alphabet:
            Number of categories; generalizes the union bound from
            ``2**k`` to ``q**k`` bins.
        """
        return cls(
            window=window,
            n_pad=default_n_pad(horizon, window, rho, beta, alphabet=alphabet),
            horizon=horizon,
            alphabet=alphabet,
        )

    @property
    def total_records(self) -> int:
        """Total fake people: ``n_pad * q**k``."""
        return self.n_pad * self.alphabet**self.window

    def count_contribution(self, query) -> float:
        """Idealized padding contribution to a query's *count* answer.

        Under the paper's "``n_pad`` fake people per bin" idealization, a
        width-``k'`` bin receives ``n_pad * q**(k - k')`` fake people: for
        ``k' <= k`` this is exact (a width-``k'`` bin aggregates
        ``q**(k-k')`` width-``k`` bins); for ``k' > k`` it extrapolates the
        uniform-padding model (``q**(k-k')`` is fractional), matching the
        paper's convention of subtracting ``n_pad`` per noisy count.

        Parameters
        ----------
        query:
            A window query (binary or categorical) exposing ``k`` and
            ``weight_sum``.
        """
        multiplicity = float(self.alphabet) ** (self.window - query.k)
        return self.n_pad * multiplicity * query.weight_sum

    @cached_property
    def panel(self):
        """Materialized padding records (de Bruijn construction).

        A :class:`~repro.data.dataset.LongitudinalDataset` for the
        binary alphabet, a
        :class:`~repro.data.categorical.CategoricalDataset` otherwise.
        """
        if self.alphabet == 2:
            return padding_panel(self.window, self.n_pad, self.horizon)
        from repro.data.categorical import categorical_padding_panel

        return categorical_padding_panel(
            self.window, self.n_pad, self.horizon, self.alphabet
        )

    def panel_count_answer(self, query, t: int) -> float:
        """Padding count answer computed on the materialized records.

        Works for any query width (including ``k' > k``, where the exact
        per-bin contribution is no longer uniform); for ``k' <= k`` it
        agrees exactly with :meth:`count_contribution`.

        Parameters
        ----------
        query:
            A window query evaluable on the padding panel.
        t:
            Round to evaluate at.
        """
        if self.n_pad == 0:
            return 0.0
        return query.evaluate(self.panel, t) * self.panel.n_individuals
