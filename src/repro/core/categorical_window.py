"""Algorithm 1 generalized to categorical alphabets.

The paper (§1, "Our results"): "The solutions we develop for fixed time
window queries naturally extend to handle categorical data with more than 2
categories."  This module carries out that extension.

With alphabet ``Sigma`` of size ``q``, the per-round histogram has ``q**k``
bins.  When the window slides, a record whose window ended with the
``(k-1)``-gram ``z`` extends into one of the ``q`` patterns ``zc``; the
consistency constraint becomes

    sum_c p_{zc}^{t+1}  =  sum_c p_{cz}^t        for every z in Sigma^{k-1},

and the correction distributes the group discrepancy
``D_z = M_z - sum_c C^_{zc}`` evenly: every child receives
``floor(D_z / q)`` and the residue ``D_z mod q`` goes to that many children
chosen uniformly at random (the fair +-1/2 rounding of the binary case is
the ``q = 2`` special case).  Padding, debiasing, privacy accounting, and
the two-phase round structure are unchanged; the binary implementation in
:mod:`repro.core.fixed_window` remains the optimized special case.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from repro.analysis.theory import default_n_pad
from repro.core.debias import debias_count_answer
from repro.data.categorical import CategoricalDataset, categorical_padding_panel
from repro.dp.accountant import ZCDPAccountant
from repro.dp.mechanisms import GaussianHistogramMechanism
from repro.exceptions import (
    ConfigurationError,
    ConsistencyError,
    DataValidationError,
    NegativeCountError,
    NotFittedError,
)
from repro.queries.categorical import CategoricalWindowQuery
from repro.rng import SeedLike, as_generator

__all__ = [
    "CategoricalWindowSynthesizer",
    "CategoricalWindowRelease",
    "apply_categorical_correction",
    "lift_categorical_weights",
]

# Guard against accidentally materializing astronomically many bins.
_MAX_BINS = 1 << 16


def apply_categorical_correction(
    previous_counts: np.ndarray,
    noisy_counts: np.ndarray,
    alphabet: int,
    generator: np.random.Generator,
    on_negative: str = "redistribute",
) -> tuple[np.ndarray, int]:
    """Project noisy categorical counts onto the consistency constraint.

    ``previous_counts`` and ``noisy_counts`` have length ``q**k``.  Pattern
    codes are base-``q`` big-endian, so the parents of overlap ``z`` are
    codes ``c * q**(k-1) + z`` and its children are ``z * q + c``.

    Returns ``(new_counts, n_negative_events)``.
    """
    if on_negative not in ("redistribute", "raise"):
        raise ConfigurationError(
            f"on_negative must be 'redistribute' or 'raise', got {on_negative!r}"
        )
    previous = np.asarray(previous_counts, dtype=np.int64)
    noisy = np.asarray(noisy_counts, dtype=np.int64)
    if previous.shape != noisy.shape:
        raise ConfigurationError(
            f"histogram shapes differ: {previous.shape} vs {noisy.shape}"
        )
    n_bins = previous.shape[0]
    n_groups = n_bins // alphabet
    # M_z: sum over the leading digit of the previous counts.
    group_totals = previous.reshape(alphabet, n_groups).sum(axis=0)
    children = noisy.reshape(n_groups, alphabet).copy()

    discrepancy = group_totals - children.sum(axis=1)
    base, residue = np.divmod(discrepancy, alphabet)
    children += base[:, None]
    # Distribute each group's residue (in [0, q)) to random children.
    for z in np.flatnonzero(residue):
        picks = generator.choice(alphabet, size=int(residue[z]), replace=False)
        children[z, picks] += 1

    negative_groups = (children < 0).any(axis=1)
    n_events = int(negative_groups.sum())
    if n_events and on_negative == "raise":
        bad = int(np.flatnonzero(negative_groups)[0])
        raise NegativeCountError(
            f"target counts went negative for overlap group z={bad}: "
            f"{children[bad].tolist()} (group total {group_totals[bad]}); "
            "increase n_pad or use on_negative='redistribute'"
        )
    if n_events:
        for z in np.flatnonzero(negative_groups):
            row = np.maximum(children[z], 0)
            excess = int(row.sum() - group_totals[z])
            # Clamping only raises the sum, so excess >= 0; shave it from
            # the largest children (fallback path outside the good event).
            while excess > 0:
                top = int(row.argmax())
                take = min(excess, int(row[top]))
                row[top] -= take
                excess -= take
            children[z] = row

    return children.reshape(n_bins), n_events


def lift_categorical_weights(
    weights: np.ndarray, from_k: int, to_k: int, alphabet: int
) -> np.ndarray:
    """Lift a width-``k'`` categorical weight vector to width ``k >= k'``."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (alphabet**from_k,):
        raise ConfigurationError(
            f"weights must have length {alphabet}**{from_k}, got {weights.shape}"
        )
    if to_k < from_k:
        raise ConfigurationError(f"cannot lift width {from_k} down to {to_k}")
    codes = np.arange(alphabet**to_k)
    return weights[codes % (alphabet**from_k)]


class _CategoricalStore:
    """Synthetic categorical records with base-``q`` window-code bookkeeping."""

    def __init__(
        self,
        initial_counts: np.ndarray,
        window: int,
        horizon: int,
        alphabet: int,
        generator: np.random.Generator,
    ):
        counts = np.asarray(initial_counts, dtype=np.int64)
        if (counts < 0).any():
            raise ConfigurationError("initial_counts must be non-negative")
        self.window = window
        self.horizon = horizon
        self.alphabet = alphabet
        self._generator = generator
        self.m = int(counts.sum())
        self._t = window
        codes = np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)
        generator.shuffle(codes)
        self._codes = codes
        self._matrix = np.zeros((self.m, horizon), dtype=np.int64)
        for j in range(window):
            self._matrix[:, j] = (codes // alphabet ** (window - 1 - j)) % alphabet

    @property
    def t(self) -> int:
        return self._t

    def counts(self) -> np.ndarray:
        return np.bincount(
            self._codes, minlength=self.alphabet**self.window
        ).astype(np.int64)

    def extend(self, target_counts: np.ndarray) -> None:
        if self._t >= self.horizon:
            raise ConsistencyError(f"store already materialized all {self.horizon} rounds")
        target = np.asarray(target_counts, dtype=np.int64)
        if (target < 0).any():
            raise ConsistencyError("target_counts must be non-negative")
        q = self.alphabet
        n_groups = q ** (self.window - 1)
        suffixes = self._codes % n_groups
        group_targets = target.reshape(n_groups, q)
        current_groups = np.bincount(suffixes, minlength=n_groups)
        if not (group_targets.sum(axis=1) == current_groups).all():
            raise ConsistencyError(
                "target histogram violates the overlap-consistency constraint"
            )
        new_digit = np.empty(self.m, dtype=np.int64)
        order = np.argsort(suffixes, kind="stable")
        boundaries = np.searchsorted(suffixes[order], np.arange(n_groups + 1))
        for z in range(n_groups):
            members = order[boundaries[z] : boundaries[z + 1]]
            if members.size == 0:
                continue
            shuffled = members[self._generator.permutation(members.size)]
            start = 0
            for c in range(q):
                take = int(group_targets[z, c])
                new_digit[shuffled[start : start + take]] = c
                start += take
        self._matrix[:, self._t] = new_digit
        self._codes = suffixes * q + new_digit
        self._t += 1

    def as_dataset(self, t: int | None = None) -> CategoricalDataset:
        t = self._t if t is None else t
        if not self.window <= t <= self._t:
            raise ConfigurationError(f"t must lie in [{self.window}, {self._t}], got {t}")
        return CategoricalDataset(self._matrix[:, :t], self.alphabet)


class CategoricalWindowRelease:
    """Release view of a categorical fixed-window run.

    Parameters
    ----------
    synthesizer:
        The owning :class:`CategoricalWindowSynthesizer`; the release is
        a live view of its state, not a frozen copy.
    """

    def __init__(self, synthesizer: "CategoricalWindowSynthesizer"):
        self._synth = synthesizer

    @property
    def window(self) -> int:
        """Window width ``k``."""
        return self._synth.window

    @property
    def alphabet(self) -> int:
        """Alphabet size ``q``."""
        return self._synth.alphabet

    @property
    def n_pad(self) -> int:
        """Padding per bin (public)."""
        return self._synth.n_pad

    @property
    def n_original(self) -> int:
        """Number of real individuals ``n``."""
        if self._synth._n is None:
            raise NotFittedError("no data observed yet")
        return self._synth._n

    @property
    def n_synthetic(self) -> int:
        """Number of synthetic individuals."""
        if self._synth._store is None:
            raise NotFittedError("the first update step has not run yet")
        return self._synth._store.m

    @property
    def negative_count_events(self) -> int:
        """Groups that needed the negative-count fallback."""
        return self._synth._negative_events

    def synthetic_data(self, t: int | None = None) -> CategoricalDataset:
        """The synthetic categorical panel through round ``t``."""
        if self._synth._store is None:
            raise NotFittedError("the first update step has not run yet")
        return self._synth._store.as_dataset(t)

    def histogram(self, t: int) -> np.ndarray:
        """Target synthetic histogram at round ``t`` (length ``q**k``)."""
        try:
            return self._synth._histograms[t].copy()
        except KeyError:
            raise NotFittedError(f"no histogram released for t={t}") from None

    def released_times(self) -> list[int]:
        """Rounds with a released histogram, ascending."""
        return sorted(self._synth._histograms)

    def answer(self, query: CategoricalWindowQuery, t: int, debias: bool = True) -> float:
        """Answer a categorical window query of width <= ``k`` at round ``t``."""
        query.check_time(t)
        if query.alphabet != self.alphabet:
            raise ConfigurationError(
                f"query alphabet {query.alphabet} != release alphabet {self.alphabet}"
            )
        if query.k > self.window:
            raise ConfigurationError(
                f"query width {query.k} exceeds synthesizer window {self.window}"
            )
        weights = lift_categorical_weights(
            query.weights, query.k, self.window, self.alphabet
        )
        count_answer = float(weights @ self.histogram(t))
        if not debias:
            return count_answer / self.n_synthetic
        multiplicity = float(self.alphabet ** (self.window - query.k))
        padding_count = self.n_pad * multiplicity * query.weight_sum
        return debias_count_answer(count_answer, padding_count, self.n_original)

    def __repr__(self) -> str:
        return (
            f"CategoricalWindowRelease(k={self.window}, q={self.alphabet}, "
            f"n_pad={self.n_pad})"
        )


class CategoricalWindowSynthesizer:
    """Fixed-window continual synthesizer over a categorical alphabet.

    Parameters mirror
    :class:`~repro.core.fixed_window.FixedWindowSynthesizer` plus
    ``alphabet`` (the number of categories ``q >= 2``); the binary class is
    the ``q = 2`` special case with a tighter rounding analysis.
    """

    def __init__(
        self,
        horizon: int,
        window: int,
        alphabet: int,
        rho: float,
        *,
        n_pad: int | None = None,
        beta: float = 0.05,
        on_negative: str = "redistribute",
        sensitivity: float = 1.0,
        seed: SeedLike = None,
        noise_method: str = "exact",
    ):
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if not 1 <= window <= horizon:
            raise ConfigurationError(
                f"window must lie in [1, horizon={horizon}], got {window}"
            )
        if alphabet < 2:
            raise ConfigurationError(f"alphabet must be at least 2, got {alphabet}")
        if alphabet**window > _MAX_BINS:
            raise ConfigurationError(
                f"alphabet**window = {alphabet**window} bins exceeds the "
                f"{_MAX_BINS} limit; reduce the window or the alphabet"
            )
        if not rho > 0:
            raise ConfigurationError(f"rho must be positive (or math.inf), got {rho}")
        if on_negative not in ("redistribute", "raise"):
            raise ConfigurationError(
                f"on_negative must be 'redistribute' or 'raise', got {on_negative!r}"
            )
        self.horizon = int(horizon)
        self.window = int(window)
        self.alphabet = int(alphabet)
        self.rho = float(rho)
        self.on_negative = on_negative
        self._generator = as_generator(seed)

        self.update_steps = self.horizon - self.window + 1
        if math.isinf(self.rho):
            sigma_sq = Fraction(0)
            self.accountant = None
        else:
            sigma_sq = Fraction(self.update_steps) / (
                2 * Fraction(self.rho).limit_denominator(10**12)
            )
            self.accountant = ZCDPAccountant(self.rho)
        self.sigma_sq = sigma_sq
        self._mechanism = GaussianHistogramMechanism(
            n_bins=self.alphabet**self.window,
            sigma_sq=sigma_sq,
            sensitivity=sensitivity,
            seed=self._generator,
            method=noise_method,
        )
        if n_pad is None:
            if math.isinf(self.rho):
                n_pad = 0
            else:
                n_pad = default_n_pad(
                    self.horizon, self.window, self.rho, beta, alphabet=self.alphabet
                )
        self.n_pad = int(n_pad)

        self._t = 0
        self._n: int | None = None
        self._window_codes: np.ndarray | None = None
        self._recent_columns: list[np.ndarray] = []
        self._store: _CategoricalStore | None = None
        self._histograms: dict[int, np.ndarray] = {}
        self._negative_events = 0

    @property
    def t(self) -> int:
        """Rounds observed so far."""
        return self._t

    @property
    def release(self) -> CategoricalWindowRelease:
        """View of everything released so far."""
        return CategoricalWindowRelease(self)

    def padding_panel(self) -> CategoricalDataset:
        """The materialized de Bruijn padding population (public)."""
        return categorical_padding_panel(
            self.window, self.n_pad, self.horizon, self.alphabet
        )

    def observe_column(self, column) -> CategoricalWindowRelease:
        """Consume the round-``t`` categorical report vector and update."""
        column = np.asarray(column)
        if column.ndim != 1:
            raise DataValidationError(f"column must be 1-D, got shape {column.shape}")
        if column.size and (column.min() < 0 or column.max() >= self.alphabet):
            raise DataValidationError(
                f"column entries must lie in [0, {self.alphabet})"
            )
        if self._n is None:
            self._n = int(column.shape[0])
        elif column.shape[0] != self._n:
            raise DataValidationError(
                f"column has {column.shape[0]} entries, expected n={self._n}"
            )
        if self._t >= self.horizon:
            raise DataValidationError(f"horizon {self.horizon} already exhausted")
        self._t += 1
        column = column.astype(np.int64)

        if self._t < self.window:
            self._recent_columns.append(column)
            return self.release
        q = self.alphabet
        if self._t == self.window:
            codes = np.zeros(self._n, dtype=np.int64)
            for past in self._recent_columns:
                codes = codes * q + past
            codes = codes * q + column
            self._recent_columns = []
        else:
            codes = (self._window_codes % q ** (self.window - 1)) * q + column
        self._window_codes = codes

        true_counts = np.bincount(codes, minlength=q**self.window).astype(np.int64)
        self._update_step(true_counts)
        return self.release

    def run(self, dataset: CategoricalDataset) -> CategoricalWindowRelease:
        """Batch driver over a categorical panel."""
        if not isinstance(dataset, CategoricalDataset):
            raise DataValidationError("run() expects a CategoricalDataset")
        if dataset.alphabet != self.alphabet:
            raise DataValidationError(
                f"dataset alphabet {dataset.alphabet} != synthesizer alphabet "
                f"{self.alphabet}"
            )
        if dataset.horizon != self.horizon:
            raise DataValidationError(
                f"dataset horizon {dataset.horizon} != synthesizer horizon {self.horizon}"
            )
        if self._t:
            raise ConfigurationError("run() requires a fresh synthesizer")
        for column in dataset.columns():
            self.observe_column(column)
        return self.release

    def _update_step(self, true_counts: np.ndarray) -> None:
        if self.accountant is not None:
            self.accountant.charge(
                self._mechanism.rho_per_release,
                label=f"categorical histogram t={self._t}",
            )
        noisy = self._mechanism.release(true_counts + self.n_pad)
        if self._store is None:
            initial = noisy
            negative = initial < 0
            if negative.any():
                if self.on_negative == "raise":
                    bad = int(np.flatnonzero(negative)[0])
                    raise NegativeCountError(
                        f"initial noisy count for bin {bad} is {initial[bad]}; "
                        "increase n_pad or use on_negative='redistribute'"
                    )
                self._negative_events += int(negative.sum())
                initial = np.clip(initial, 0, None)
            self._store = _CategoricalStore(
                initial, self.window, self.horizon, self.alphabet, self._generator
            )
            self._histograms[self._t] = initial.astype(np.int64)
            return
        previous = self._histograms[self._t - 1]
        new_counts, events = apply_categorical_correction(
            previous, noisy, self.alphabet, self._generator, on_negative=self.on_negative
        )
        self._negative_events += events
        self._store.extend(new_counts)
        self._histograms[self._t] = new_counts
