"""Algorithm 1 generalized to categorical alphabets.

The paper (§1, "Our results"): "The solutions we develop for fixed time
window queries naturally extend to handle categorical data with more than 2
categories."  This module carries out that extension as a first-class
citizen of the production stack: :class:`CategoricalWindowSynthesizer` is
the generic-``q`` instantiation of the shared
:class:`~repro.core.window_engine.WindowEngine` — the same streaming loop,
dynamic-population protocol (``entrants=`` / ``exits=``), synthetic store,
zCDP ledger, and checkpoint machinery as the binary
:class:`~repro.core.fixed_window.FixedWindowSynthesizer`, which is the
``q = 2`` special case with a tighter paired rounding.

With alphabet ``Sigma`` of size ``q``, the per-round histogram has ``q**k``
bins.  When the window slides, a record whose window ended with the
``(k-1)``-gram ``z`` extends into one of the ``q`` patterns ``zc``; the
consistency constraint becomes

    sum_c p_{zc}^{t+1}  =  sum_c p_{cz}^t        for every z in Sigma^{k-1},

and the correction distributes the group discrepancy
``D_z = M_z - sum_c C^_{zc}`` evenly: every child receives
``floor(D_z / q)`` and the residue ``D_z mod q`` goes to that many children
chosen uniformly at random (the fair +-1/2 rounding of the binary case is
the ``q = 2`` special case) — see
:func:`~repro.core.consistency.apply_group_correction`.  Padding,
debiasing, privacy accounting, and the two-phase round structure are
unchanged.

The ``engine`` knob selects the vectorized path (batched residue
placement, one-argsort record extension; default) or the scalar reference
loops (one draw per group residue, one draw per synthetic record);
``benchmarks/bench_categorical_extension.py`` pins the speedup and both
engines produce identical released histograms in noiseless mode.
"""

from __future__ import annotations

import numpy as np

from repro.core.consistency import apply_group_correction
from repro.core.debias import debias_count_answer
from repro.core.window_engine import WindowEngine, WindowRelease
from repro.data.categorical import CategoricalDataset
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
    SerializationError,
)
from repro.queries.categorical import CategoricalWindowQuery
from repro.queries.plan import query_signature
from repro.rng import SeedLike

__all__ = [
    "CategoricalWindowSynthesizer",
    "CategoricalWindowRelease",
    "apply_categorical_correction",
    "lift_categorical_weights",
]

# Guard against accidentally materializing astronomically many bins.
_MAX_BINS = 1 << 16


def apply_categorical_correction(
    previous_counts: np.ndarray,
    noisy_counts: np.ndarray,
    alphabet: int,
    generator: np.random.Generator,
    on_negative: str = "redistribute",
    method: str = "vectorized",
) -> tuple[np.ndarray, int]:
    """Project noisy categorical counts onto the consistency constraint.

    A thin alias for :func:`repro.core.consistency.apply_group_correction`
    (where the projection now lives alongside its binary special case);
    kept here because the categorical extension has always exported it.

    Parameters
    ----------
    previous_counts, noisy_counts:
        Length-``q**k`` histograms at ``t`` and the noisy ``t+1``.
    alphabet:
        Number of categories ``q >= 2``.
    generator:
        Source of the residue-placement randomness.
    on_negative:
        ``"redistribute"`` (default) or ``"raise"``.
    method:
        ``"vectorized"`` (batched residue draw) or ``"scalar"``
        (per-group reference loop).

    Returns
    -------
    ``(new_counts, n_negative_events)``.
    """
    return apply_group_correction(
        previous_counts,
        noisy_counts,
        alphabet,
        generator,
        on_negative=on_negative,
        method=method,
    )


def lift_categorical_weights(
    weights: np.ndarray, from_k: int, to_k: int, alphabet: int
) -> np.ndarray:
    """Lift a width-``k'`` categorical weight vector to width ``k >= k'``.

    Parameters
    ----------
    weights:
        Length-``alphabet**from_k`` coefficient vector.
    from_k, to_k:
        Source and target window widths (``to_k >= from_k``).
    alphabet:
        Number of categories ``q >= 2``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (alphabet**from_k,):
        raise ConfigurationError(
            f"weights must have length {alphabet}**{from_k}, got {weights.shape}"
        )
    if to_k < from_k:
        raise ConfigurationError(f"cannot lift width {from_k} down to {to_k}")
    codes = np.arange(alphabet**to_k)
    return weights[codes % (alphabet**from_k)]


class CategoricalWindowRelease(WindowRelease):
    """Release view of a categorical fixed-window run.

    The categorical counterpart of
    :class:`~repro.core.fixed_window.FixedWindowRelease`, sharing the
    metadata and churn-aware population surface of
    :class:`~repro.core.window_engine.WindowRelease`.

    Parameters
    ----------
    synthesizer:
        The owning :class:`CategoricalWindowSynthesizer`; the release is
        a live view of its state (one cached instance per synthesizer),
        not a frozen copy.
    """

    @property
    def alphabet(self) -> int:
        """Alphabet size ``q``."""
        return self._synth.alphabet

    @property
    def n_pad(self) -> int:
        """Padding per bin (public)."""
        return self._synth.padding.n_pad

    def synthetic_data(self, t: int | None = None) -> CategoricalDataset:
        """The synthetic categorical panel through round ``t``."""
        store = self._synth._store
        if store is None:
            raise NotFittedError("the first update step has not run yet")
        panel = store.as_dataset(t)
        if not isinstance(panel, CategoricalDataset):
            # The shared store hands q = 2 panels back as binary
            # LongitudinalDatasets; this release's contract is categorical.
            panel = CategoricalDataset(panel.matrix, self.alphabet)
        return panel

    # -- query answering -----------------------------------------------

    def _check_query(self, query: CategoricalWindowQuery) -> None:
        """Reject queries over a different alphabet."""
        if query.alphabet != self.alphabet:
            raise ConfigurationError(
                f"query alphabet {query.alphabet} != release alphabet {self.alphabet}"
            )

    def answer(
        self, query: CategoricalWindowQuery, t: int, debias: bool = True
    ) -> float:
        """Answer a categorical window query at round ``t``.

        Queries of width ``k' <= k`` are answered from the maintained
        width-``k`` histogram; wider queries are evaluated on the
        synthetic records directly, with *no accuracy guarantee* — the
        same caveat as the binary release.  With ``debias`` (default)
        the publicly known padding contribution is subtracted and the
        answer renormalized by the real population.

        Parameters
        ----------
        query:
            A :class:`~repro.queries.categorical.CategoricalWindowQuery`
            over the release's alphabet.
        t:
            Round to answer at (``t >= query.k``).
        debias:
            Subtract the padding contribution and renormalize by ``n``
            (default); otherwise return the biased fraction of the
            synthetic population.
        """
        query.check_time(t)
        self._check_query(query)
        if query.k <= self.window:
            weights = lift_categorical_weights(
                query.weights, query.k, self.window, self.alphabet
            )
            count_answer = float(weights @ self.histogram(t))
        else:
            panel = self.synthetic_data(t)
            # Entrants admitted after round t sit at the end of the record
            # matrix; exclude them so record-level answers describe the
            # round-t population (a no-op for static populations).
            m_t = self.synthetic_population(t)
            if m_t < panel.n_individuals:
                panel = CategoricalDataset(panel.matrix[:m_t], self.alphabet)
            count_answer = query.evaluate(panel, t) * panel.n_individuals
        if not debias:
            return count_answer / self.synthetic_population(t)
        padding_count = self.padding.count_contribution(query)
        return debias_count_answer(count_answer, padding_count, self.population(t))

    def answer_series(
        self, query: CategoricalWindowQuery, times=None, debias: bool = True
    ) -> np.ndarray:
        """Batch-answer one query over many released rounds at once.

        One weight lift and one matrix product replace the per-round
        :meth:`answer` loop: the released histograms are stacked into a
        ``(len(times), q**k)`` table and multiplied by the lifted weight
        vector, with the padding/debias arithmetic applied vectorized.
        Agrees exactly with calling :meth:`answer` per round.

        Parameters
        ----------
        query:
            A width-``k' <= k`` query over the release's alphabet
            (record-level wide queries have no batched path).
        times:
            Rounds to answer at (default: every released round at which
            the query is defined).
        debias:
            As in :meth:`answer`.

        Returns
        -------
        numpy.ndarray
            One answer per requested round, in order.
        """
        self._check_query(query)
        if query.k > self.window:
            raise ConfigurationError(
                f"answer_series answers histogram queries (width <= "
                f"{self.window}); width-{query.k} queries need per-round "
                "record evaluation via answer()"
            )
        if times is None:
            times = [t for t in self.released_times() if t >= query.min_time()]
        times = [int(t) for t in times]
        for t in times:
            query.check_time(t)
        if not times:
            return np.zeros(0, dtype=np.float64)
        weights = lift_categorical_weights(
            query.weights, query.k, self.window, self.alphabet
        )
        # histogram() raises NotFittedError for unreleased rounds, exactly
        # like the per-round answer() path.
        table = np.stack([self.histogram(t) for t in times])
        counts = table @ weights
        if not debias:
            denominators = np.array(
                [self.synthetic_population(t) for t in times], dtype=np.float64
            )
            self._check_denominators(denominators, times, "synthetic population")
            return counts / denominators
        padding_count = self.padding.count_contribution(query)
        populations = np.array(
            [self.population(t) for t in times], dtype=np.float64
        )
        self._check_denominators(populations, times, "n_original")
        return (counts - padding_count) / populations

    def _compile_batch_query(self, query, options: dict):
        """Compile a width-``k' <= k`` categorical query for the batch path.

        Returns ``None`` — scalar fallback — for record-level wide
        queries and foreign query types; an alphabet mismatch raises
        exactly like the scalar :meth:`answer`.
        """
        if options:
            return None
        if (
            getattr(query, "alphabet", None) is None
            or getattr(query, "k", None) is None
            or getattr(query, "weights", None) is None
        ):
            return None
        self._check_query(query)
        if query.k > self.window:
            return None
        signature = query_signature(query)
        plans = self._synth._plan_cache
        lifted = None if signature is None else plans.get(signature)
        if lifted is None:
            lifted = lift_categorical_weights(
                query.weights, query.k, self.window, self.alphabet
            )
            if signature is not None:
                plans[signature] = lifted
        return lifted, self.padding.count_contribution(query)

    @staticmethod
    def _check_denominators(values: np.ndarray, times, label: str) -> None:
        """Raise like :func:`debias_count_answer` instead of emitting inf."""
        bad = np.flatnonzero(values <= 0)
        if bad.size:
            t = times[int(bad[0])]
            raise ConfigurationError(
                f"{label} must be positive, got {int(values[bad[0]])} at t={t}"
            )

    def __repr__(self) -> str:
        return (
            f"CategoricalWindowRelease(k={self.window}, q={self.alphabet}, "
            f"n_pad={self.n_pad})"
        )


class CategoricalWindowSynthesizer(WindowEngine):
    """Fixed-window continual synthesizer over a categorical alphabet.

    Parameters mirror
    :class:`~repro.core.fixed_window.FixedWindowSynthesizer` plus
    ``alphabet`` (the number of categories ``q >= 2``) and ``engine``;
    the binary class is the ``q = 2`` special case with a tighter
    rounding analysis.  The full streaming surface — churn-aware
    :meth:`~repro.core.window_engine.WindowEngine.observe`,
    checkpointing via
    :meth:`~repro.core.window_engine.WindowEngine.state_dict` /
    :meth:`~repro.core.window_engine.WindowEngine.load_state`, and the
    serving stack (:mod:`repro.serve`) — is inherited from the shared
    engine.

    Parameters
    ----------
    horizon:
        Known time horizon ``T``.
    window:
        Window width ``k`` (``1 <= k <= T``; ``alphabet**window`` bins
        must stay under 65536).
    alphabet:
        Number of categories ``q >= 2``.
    rho:
        Total zCDP budget; ``math.inf`` disables noise.
    n_pad:
        Padding per bin (``None``: the Theorem 3.2 value over ``q**k``
        bins).
    beta:
        Target failure probability used when auto-sizing ``n_pad``.
    on_negative:
        ``"redistribute"`` (default) or ``"raise"``.
    sensitivity:
        Histogram L2 sensitivity for noise calibration.
    noise_method:
        ``"exact"`` or ``"vectorized"`` discrete Gaussian backend.
    engine:
        ``"vectorized"`` (batched scatter-op projection and extension,
        default) or ``"scalar"`` (reference loops); ``None`` consults
        ``$REPRO_ENGINE`` like the cumulative synthesizer's counter
        engine.
    """

    algorithm = "categorical_window"
    _max_bins = _MAX_BINS

    def __init__(
        self,
        horizon: int,
        window: int,
        alphabet: int,
        rho: float,
        *,
        n_pad: int | None = None,
        beta: float = 0.05,
        on_negative: str = "redistribute",
        sensitivity: float = 1.0,
        seed: SeedLike = None,
        noise_method: str = "exact",
        engine: str | None = None,
    ):
        super().__init__(
            horizon,
            window,
            rho,
            alphabet=alphabet,
            n_pad=n_pad,
            beta=beta,
            on_negative=on_negative,
            sensitivity=sensitivity,
            seed=seed,
            noise_method=noise_method,
            engine=engine,
        )

    def _make_release(self) -> CategoricalWindowRelease:
        """Build the cached categorical release view."""
        return CategoricalWindowRelease(self)

    def _check_dataset(self, dataset) -> None:
        """Batch runs consume a matching :class:`CategoricalDataset`."""
        if not isinstance(dataset, CategoricalDataset):
            raise DataValidationError("run() expects a CategoricalDataset")
        if dataset.alphabet != self.alphabet:
            raise DataValidationError(
                f"dataset alphabet {dataset.alphabet} != synthesizer alphabet "
                f"{self.alphabet}"
            )
        super()._check_dataset(dataset)

    def config_dict(self) -> dict:
        """The constructor arguments needed to rebuild this synthesizer.

        Returns
        -------
        dict
            The shared engine keys
            (:meth:`~repro.core.window_engine.WindowEngine.config_dict`)
            plus ``alphabet`` and ``engine``.
        """
        config = super().config_dict()
        config["alphabet"] = self.alphabet
        config["engine"] = self.engine
        return config

    @classmethod
    def from_config(cls, config: dict) -> "CategoricalWindowSynthesizer":
        """Rebuild a fresh synthesizer from :meth:`config_dict` output.

        Parameters
        ----------
        config:
            A mapping produced by :meth:`config_dict`.

        Returns
        -------
        CategoricalWindowSynthesizer
            An unfitted synthesizer with the same configuration, ready
            for :meth:`~repro.core.window_engine.WindowEngine.load_state`.

        Raises
        ------
        repro.exceptions.SerializationError
            If required keys are missing or fail constructor validation.
        """
        try:
            return cls(
                int(config["horizon"]),
                int(config["window"]),
                int(config["alphabet"]),
                float(config["rho"]),
                n_pad=int(config["n_pad"]),
                on_negative=str(config["on_negative"]),
                sensitivity=float(config["sensitivity"]),
                noise_method=str(config["noise_method"]),
                engine=str(config["engine"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid categorical-window config: {exc}") from exc
