"""Dynamic-population bookkeeping: who is present when.

The paper's model fixes the population before round 1; real longitudinal
collections (SIPP above all) churn — households attrit wave by wave and
new sample members enter mid-panel.  This module holds the *public* side
of that churn: a :class:`PopulationLedger` tracking each individual's
lifespan ``[entry_round, exit_round)``.

**The neighboring relation under churn.**  Two dynamic panels are
neighbors when they differ in *one individual's entire contribution over
their lifespan* (all of that individual's reports, from entry to exit);
the churn schedule itself — how many individuals enter and leave each
round — is public metadata, exactly like the population size ``n`` in the
static model.  Under the **zero-fill convention** adopted by both
synthesizers, an individual is treated as reporting a structural 0 before
entry and after exit:

* entrants start at Hamming weight 0 (cumulative) / the all-zero window
  code (fixed-window), as if they had silently reported 0 since round 1;
* departed individuals keep reporting a structural 0, so their Hamming
  weight freezes and their window code decays to the all-zero pattern.

Zero-filling is a *public* post-processing of the churn schedule, so it
costs no privacy.  It also preserves every structural invariant the
algorithms rely on: threshold counts ``S_b^t`` stay non-decreasing in
``t`` (frozen weights never fall), and consecutive window histograms stay
overlap-consistent once the previous histogram is credited with this
round's entrants at the all-zero bin.  Each individual still contributes
at most one unit increment to each threshold counter's stream — now
bounded across their *lifespan* instead of the full horizon — so every
per-counter zCDP charge recorded by the
:class:`~repro.dp.accountant.ZCDPAccountant` covers the churned stream at
unchanged sensitivity; the ledger is what makes that lifespan bound an
enforced invariant rather than an assumption.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError, SerializationError

__all__ = ["PopulationLedger", "validate_binary_column", "validate_exit_ids"]


def validate_binary_column(column: np.ndarray) -> None:
    """Reject report entries outside ``{0, 1}``, cheaply.

    The naive membership test (``np.isin(column, (0, 1))``) walks a
    sort-based set intersection — measurably slow at 10M-row columns,
    and it runs on *every* round of every shard.  This check is
    dtype-aware instead: boolean columns are structurally valid, integer
    columns need only a min/max sweep (two SIMD reductions, no
    temporaries), and anything else (floats, objects) falls back to the
    exact elementwise test so ``0.5`` is still rejected.

    Parameters
    ----------
    column:
        1-D report vector (any dtype).

    Raises
    ------
    repro.exceptions.DataValidationError
        If any entry is not exactly 0 or 1 — the same error (and
        message) the membership test raised.
    """
    if not column.size:
        return
    kind = column.dtype.kind
    if kind == "b":
        return
    if kind in "ui":
        if (kind == "i" and int(column.min()) < 0) or int(column.max()) > 1:
            raise DataValidationError("column entries must be 0 or 1")
        return
    if not (np.equal(column, 0) | np.equal(column, 1)).all():
        raise DataValidationError("column entries must be 0 or 1")


def validate_exit_ids(ids, active: np.ndarray) -> np.ndarray:
    """Validate a round's exit declarations against an active mask.

    The one definition of what a legal exit list is — shared by
    :meth:`PopulationLedger.retire` and the sharded service's pre-shard
    validation, so the two layers cannot drift.

    Parameters
    ----------
    ids:
        Proposed exit ids (admission order).
    active:
        Boolean per-individual activity mask of length ``n_ever``.

    Returns
    -------
    numpy.ndarray
        The ids as a sorted int64 array.

    Raises
    ------
    repro.exceptions.DataValidationError
        On non-1-D input, duplicates, out-of-range ids, or ids that
        already departed (exits are permanent; re-entry is not part of
        the model).
    """
    ids = np.asarray(ids, dtype=np.int64)
    if ids.ndim != 1:
        raise DataValidationError(f"exit ids must be 1-D, got shape {ids.shape}")
    if ids.size == 0:
        return ids
    ids = np.sort(ids)
    if (np.diff(ids) == 0).any():
        raise DataValidationError("exit ids must be unique")
    n_ever = int(active.shape[0])
    if ids[0] < 0 or ids[-1] >= n_ever:
        raise DataValidationError(
            f"exit ids must lie in [0, {n_ever - 1}], got {ids.tolist()}"
        )
    departed = ~active[ids]
    if departed.any():
        bad = int(ids[departed][0])
        raise DataValidationError(
            f"individual {bad} already departed; exits are permanent and "
            "re-entry is not supported"
        )
    return ids


class PopulationLedger:
    """Lifespan table for a dynamic population.

    Individuals are identified by their **admission order**: the initial
    population (everyone admitted at round 1) gets ids ``0..n-1`` in
    column order, and each later entrant gets the next id.  An individual
    is *active* from their entry round until (exclusively) their exit
    round; exits are permanent — a departed id can never re-enter, and
    entrants always receive fresh ids, so re-entry is structurally
    impossible and an attempt to retire a departed id is rejected.

    Parameters
    ----------
    entry_round, exit_round:
        Optional initial lifespan arrays (used by deserialization);
        fresh ledgers start empty and grow via :meth:`admit`.
    """

    def __init__(self, entry_round=None, exit_round=None):
        self._entry = np.asarray(
            entry_round if entry_round is not None else [], dtype=np.int64
        )
        self._exit = np.asarray(
            exit_round if exit_round is not None else [], dtype=np.int64
        )
        if self._entry.shape != self._exit.shape or self._entry.ndim != 1:
            raise DataValidationError("entry/exit rounds must be equal-length 1-D arrays")
        self._churned = bool(
            (self._exit > 0).any() or (self._entry > 1).any()
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_ever(self) -> int:
        """Total individuals ever admitted."""
        return int(self._entry.shape[0])

    @property
    def n_active(self) -> int:
        """Individuals currently present (admitted and not departed)."""
        return int((self._exit == 0).sum())

    @property
    def churned(self) -> bool:
        """True once any mid-stream entry or any exit has been recorded."""
        return self._churned

    def active_ids(self) -> np.ndarray:
        """Ids of the currently active individuals, ascending."""
        return np.flatnonzero(self._exit == 0)

    def n_ever_at(self, round_number: int) -> int:
        """Individuals admitted by the end of round ``round_number``."""
        return int((self._entry <= round_number).sum())

    def lifespans(self) -> np.ndarray:
        """Per-individual ``(entry_round, exit_round)`` pairs.

        Returns
        -------
        numpy.ndarray
            Shape ``(n_ever, 2)`` int64; ``exit_round`` 0 means the
            individual is still active.
        """
        return np.stack([self._entry, self._exit], axis=1)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def admit(self, count: int, round_number: int) -> None:
        """Admit ``count`` fresh individuals entering at ``round_number``.

        Parameters
        ----------
        count:
            Number of entrants (non-negative); they receive the next
            ``count`` ids in admission order.
        round_number:
            The 1-indexed round the entrants first report in.
        """
        if count < 0:
            raise DataValidationError(f"entrant count must be non-negative, got {count}")
        if count == 0:
            return
        self._entry = np.concatenate(
            [self._entry, np.full(count, round_number, dtype=np.int64)]
        )
        self._exit = np.concatenate([self._exit, np.zeros(count, dtype=np.int64)])
        if round_number > 1:
            self._churned = True

    def retire(self, ids, round_number: int) -> np.ndarray:
        """Record that ``ids`` stop reporting as of ``round_number``.

        Parameters
        ----------
        ids:
            Ids (admission order) of currently *active* individuals; a
            departed or unknown id is rejected — exits are permanent and
            re-entry is not part of the model.
        round_number:
            The first 1-indexed round the individuals are absent from.

        Returns
        -------
        numpy.ndarray
            The validated exit ids as a sorted int64 array.
        """
        ids = validate_exit_ids(ids, self._exit == 0)
        if ids.size == 0:
            return ids
        self._exit[ids] = round_number
        self._churned = True
        return ids

    def scatter_column(self, column: np.ndarray) -> np.ndarray:
        """Zero-fill an active-population column to the ever-population.

        Parameters
        ----------
        column:
            Length-``n_active`` int64 report vector, ordered by ascending
            id over the active individuals.

        Returns
        -------
        numpy.ndarray
            Length-``n_ever`` vector with the reports placed at the
            active ids and structural zeros elsewhere.  When everyone
            ever admitted is still active this is ``column`` itself (no
            copy), which keeps the fixed-population fast path allocation-
            and bit-exact.
        """
        if column.shape != (self.n_active,):
            raise DataValidationError(
                f"column has {column.shape[0]} entries, expected n_active={self.n_active}"
            )
        if self.n_active == self.n_ever:
            return column
        full = np.zeros(self.n_ever, dtype=np.int64)
        full[self.active_ids()] = column
        return full

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def state_dict(self, *, copy: bool = True) -> dict:
        """Snapshot the lifespan table (NumPy arrays, bundle-ready).

        Parameters
        ----------
        copy:
            Copy the arrays (default).  ``copy=False`` returns live views
            for the streaming checkpoint writer; consume them before the
            ledger records further churn.
        """
        if not copy:
            return {"entry_round": self._entry, "exit_round": self._exit}
        return {
            "entry_round": self._entry.copy(),
            "exit_round": self._exit.copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "PopulationLedger":
        """Rebuild a ledger from :meth:`state_dict` output.

        Parameters
        ----------
        state:
            A snapshot with ``entry_round`` and ``exit_round`` arrays.

        Returns
        -------
        PopulationLedger
            The restored lifespan table.

        Raises
        ------
        repro.exceptions.SerializationError
            If the snapshot is structurally invalid.
        """
        try:
            entry = np.array(state["entry_round"], dtype=np.int64)
            exit_round = np.array(state["exit_round"], dtype=np.int64)
            return cls(entry, exit_round)
        except (KeyError, TypeError, ValueError, DataValidationError) as exc:
            raise SerializationError(f"invalid population ledger state: {exc}") from exc

    def __repr__(self) -> str:
        return (
            f"PopulationLedger(n_ever={self.n_ever}, n_active={self.n_active}, "
            f"churned={self._churned})"
        )
