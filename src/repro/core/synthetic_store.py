"""Synthetic record stores.

Both synthesizers maintain an explicit population of synthetic individuals
whose histories grow by one bit per round and are never rewritten — the
consistency requirement at the heart of the paper's model.  The stores keep
the record matrix plus the bookkeeping needed to extend records in O(n)
per round:

* :class:`WindowSyntheticStore` (Algorithm 1, any alphabet ``q >= 2``)
  tracks each record's current length-``k`` base-``q`` window code and
  extends records grouped by their ``(k-1)``-digit suffix; the binary
  panels of the paper's figures are the ``alphabet=2`` default.
* :class:`CumulativeSyntheticStore` (Algorithm 2) tracks each record's
  Hamming weight and extends records grouped by exact weight.

Both stores also speak the dynamic-population protocol of
:mod:`repro.core.population`: :meth:`admit` appends fresh records for
entrants (all-zero history, the zero-fill convention) and :meth:`retire`
marks records departed.  Because real departures' private states (weights
/ window codes) must not influence the synthetic panel, the records to
mark are chosen uniformly at random among the active ones — a public
labeling that tracks the departed *count*, not the departed individuals.
Marked records keep extending mechanically: the released tables and
histograms still cover the zero-filled departed population, and the
synthetic panel models that population *collectively* (its census over
**all** records is what must equal the release).  Freezing the marked
records instead would force extra clamping whenever the random labels
landed on the wrong weight groups — strictly worse accuracy for no
privacy gain.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import LongitudinalDataset
from repro.exceptions import ConfigurationError, ConsistencyError, SerializationError

__all__ = ["WindowSyntheticStore", "CumulativeSyntheticStore"]


def _digit_dtype(alphabet: int) -> np.dtype:
    """Smallest unsigned dtype holding one base-``alphabet`` digit.

    ``uint8`` for every alphabet up to 256 — in particular the binary
    case keeps its historical ``uint8`` record matrix bit-for-bit.
    """
    return np.min_scalar_type(alphabet - 1)


def _choose_within_groups(
    group_of: np.ndarray,
    n_groups: int,
    picks_per_group: np.ndarray,
    generator: np.random.Generator,
) -> np.ndarray:
    """Pick ``picks_per_group[g]`` random members of each group.

    Returns the selected indices (into ``group_of``).  Raises
    :class:`ConsistencyError` when a group is asked for more members than
    it has — which would mean the caller's histogram bookkeeping diverged
    from the record population.

    One uniform key per record plus a single argsort of the composite
    ``group + key`` float (the integer part orders by group, the
    fractional part is a fresh uniform tiebreak) orders every group
    uniformly at random simultaneously; taking each group's first
    ``picks_per_group[g]`` entries of that order is then a uniform
    without-replacement sample.  The whole selection is one sort per
    round instead of a Python loop with one ``generator.choice`` call per
    group — ``benchmarks/bench_replication.py`` pins the speedup.
    """
    picks_per_group = np.asarray(picks_per_group, dtype=np.int64)
    sizes = np.bincount(group_of, minlength=n_groups)[:n_groups]
    bad = (picks_per_group < 0) | (picks_per_group > sizes)
    if bad.any():
        g = int(np.flatnonzero(bad)[0])
        raise ConsistencyError(
            f"group {g} has {int(sizes[g])} records but "
            f"{int(picks_per_group[g])} were requested"
        )
    if not picks_per_group.any():
        return np.zeros(0, dtype=np.int64)
    keys = generator.random(group_of.shape[0])
    order = np.argsort(group_of + keys)  # group-major, random within group
    sorted_groups = group_of[order]
    # Rank of each sorted record within its group; a record is chosen iff
    # its rank falls below the group's quota (groups beyond ``n_groups``
    # have quota 0 and are never chosen).
    n_labels = max(n_groups, int(sorted_groups[-1]) + 1)
    starts = np.searchsorted(sorted_groups, np.arange(n_labels))
    quota = np.zeros(n_labels, dtype=np.int64)
    quota[:n_groups] = picks_per_group
    rank = np.arange(order.shape[0], dtype=np.int64) - starts[sorted_groups]
    return order[rank < quota[sorted_groups]]


def _assign_within_groups(
    group_of: np.ndarray,
    n_groups: int,
    quotas: np.ndarray,
    generator: np.random.Generator,
) -> np.ndarray:
    """Assign each record a label so group ``g`` gets ``quotas[g, l]`` of label ``l``.

    The base-``q`` generalization of :func:`_choose_within_groups`: one
    uniform key per record plus a single argsort of ``group + key`` orders
    every group uniformly at random, and label blocks are carved out of
    each group's random order in *descending* label order.  At two labels
    this selects exactly the records :func:`_choose_within_groups` (with
    ``picks_per_group = quotas[:, 1]``) would pick for label 1, from the
    identical generator stream — which is what keeps the binary window
    synthesizer bit-exact through the shared engine.  When only label 0
    is requested the assignment is forced and no randomness is consumed
    (the same fast path as the binary helper).

    Raises :class:`ConsistencyError` when a group's quotas are negative
    or do not sum to its population.
    """
    quotas = np.asarray(quotas, dtype=np.int64)
    n_labels = quotas.shape[1]
    sizes = np.bincount(group_of, minlength=n_groups)[:n_groups]
    bad = (quotas < 0).any(axis=1) | (quotas.sum(axis=1) != sizes)
    if bad.any():
        g = int(np.flatnonzero(bad)[0])
        raise ConsistencyError(
            f"group {g} has {int(sizes[g])} records but label quotas "
            f"{quotas[g].tolist()} were requested"
        )
    labels = np.zeros(group_of.shape[0], dtype=np.int64)
    if not quotas[:, 1:].any():
        return labels
    keys = generator.random(group_of.shape[0])
    order = np.argsort(group_of + keys)  # group-major, random within group
    sorted_groups = group_of[order]
    starts = np.searchsorted(sorted_groups, np.arange(n_groups))
    rank = np.arange(order.shape[0], dtype=np.int64) - starts[sorted_groups]
    # Descending-label thresholds: label L-1 takes each group's first
    # quotas[g, L-1] ranks, label L-2 the next quotas[g, L-2] ranks, ...
    cuts = quotas[:, ::-1].cumsum(axis=1)
    passed = (rank[:, None] >= cuts[sorted_groups]).sum(axis=1)
    labels[order] = n_labels - 1 - passed
    return labels


class WindowSyntheticStore:
    """Synthetic records for Algorithm 1 over any alphabet.

    Parameters
    ----------
    initial_counts:
        Length ``alphabet**k`` non-negative integer histogram; the store
        materializes ``initial_counts[s]`` records whose first ``k``
        symbols equal pattern ``s`` (any such dataset is a valid output
        at ``t = k``).
    window:
        Window width ``k``.
    horizon:
        Total rounds ``T`` — the record matrix is preallocated.
    generator:
        Randomness for record ordering and extension choices.
    alphabet:
        Number of categories ``q >= 2``; the default 2 is the paper's
        binary panel (and stays bit-exact with the pre-categorical
        store, generator stream included).
    assign:
        Extension-assignment engine: ``"vectorized"`` (one argsort per
        round, :func:`_assign_within_groups`) or ``"scalar"`` (the
        per-record reference loop — one draw per synthetic record per
        round, matching the paper's pseudocode granularity).
    """

    def __init__(
        self,
        initial_counts: np.ndarray,
        window: int,
        horizon: int,
        generator: np.random.Generator,
        alphabet: int = 2,
        assign: str = "vectorized",
    ):
        if alphabet < 2:
            raise ConfigurationError(f"alphabet must be at least 2, got {alphabet}")
        if assign not in ("vectorized", "scalar"):
            raise ConfigurationError(
                f"assign must be 'vectorized' or 'scalar', got {assign!r}"
            )
        counts = np.asarray(initial_counts, dtype=np.int64)
        if counts.shape != (alphabet**window,):
            raise ConfigurationError(
                f"initial_counts must have length {alphabet}**{window}, "
                f"got {counts.shape}"
            )
        if (counts < 0).any():
            raise ConfigurationError("initial_counts must be non-negative")
        if horizon < window:
            raise ConfigurationError(f"horizon {horizon} shorter than window {window}")
        self.window = int(window)
        self.horizon = int(horizon)
        self.alphabet = int(alphabet)
        self._assign = assign
        self._generator = generator
        self.m = int(counts.sum())
        self._t = window

        # Materialize initial records: codes are assigned in shuffled order
        # so record index carries no information about the pattern.
        codes = np.repeat(np.arange(alphabet**window, dtype=np.int64), counts)
        generator.shuffle(codes)
        self._codes = codes  # current base-q window code per record
        self._matrix = np.zeros((self.m, horizon), dtype=_digit_dtype(alphabet))
        self._active = np.ones(self.m, dtype=bool)
        for j in range(window):
            self._matrix[:, j] = (codes // alphabet ** (window - 1 - j)) % alphabet

    @property
    def n_active(self) -> int:
        """Records not yet retired (present synthetic individuals)."""
        return int(self._active.sum())

    @property
    def n_retired(self) -> int:
        """Records marked departed via :meth:`retire`."""
        return self.m - self.n_active

    def admit(self, count: int) -> None:
        """Append ``count`` entrant records with all-zero history.

        The zero-fill convention gives entrants the all-zero window code
        (they are treated as having reported 0 since round 1), so the
        admitted records land in histogram bin 0 and the caller must
        credit the previous target histogram accordingly before the next
        :meth:`extend`.  No randomness is consumed.
        """
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        self._codes = np.concatenate([self._codes, np.zeros(count, dtype=np.int64)])
        self._matrix = np.vstack(
            [self._matrix, np.zeros((count, self.horizon), dtype=self._matrix.dtype)]
        )
        self._active = np.concatenate([self._active, np.ones(count, dtype=bool)])
        self.m += count

    def retire(self, count: int) -> None:
        """Mark ``count`` uniformly-random active records as departed.

        Real departures' window codes are private, so the synthetic
        records to retire are chosen uniformly at random — retirement is
        bookkeeping (``n_active`` and the active mask) and does not stop
        the records from extending: under zero-fill the histograms still
        cover the departed individuals' decaying windows.
        """
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        active_idx = np.flatnonzero(self._active)
        if count > active_idx.shape[0]:
            raise ConsistencyError(
                f"cannot retire {count} records; only {active_idx.shape[0]} active"
            )
        chosen = self._generator.choice(active_idx, size=count, replace=False)
        self._active[chosen] = False

    def active_mask(self) -> np.ndarray:
        """Per-record active flags (copy), aligned with the record matrix."""
        return self._active.copy()

    @property
    def t(self) -> int:
        """Rounds materialized so far."""
        return self._t

    def counts(self) -> np.ndarray:
        """Current synthetic window histogram ``p^t`` (length ``q**k``)."""
        return np.bincount(
            self._codes, minlength=self.alphabet**self.window
        ).astype(np.int64)

    def extend(self, target_counts: np.ndarray) -> None:
        """Advance one round so the window histogram becomes ``target_counts``.

        ``target_counts`` must satisfy the overlap-consistency constraint
        w.r.t. the current histogram (checked); records keeping suffix
        ``z`` are split among the ``q`` extensions ``zc`` uniformly at
        random (``z0``/``z1`` in the binary case).
        """
        if self._t >= self.horizon:
            raise ConsistencyError(f"store already materialized all {self.horizon} rounds")
        target = np.asarray(target_counts, dtype=np.int64)
        if target.shape != (self.alphabet**self.window,):
            raise ConfigurationError(
                f"target_counts must have length {self.alphabet}**{self.window}, "
                f"got {target.shape}"
            )
        if (target < 0).any():
            raise ConsistencyError("target_counts must be non-negative")

        n_groups = self.alphabet ** (self.window - 1)
        suffixes = self._codes % n_groups
        group_targets = target.reshape(n_groups, self.alphabet)
        current_groups = np.bincount(suffixes, minlength=n_groups)
        if not (group_targets.sum(axis=1) == current_groups).all():
            raise ConsistencyError(
                "target histogram violates the overlap-consistency constraint"
            )

        if self._assign == "vectorized":
            new_digit = _assign_within_groups(
                suffixes, n_groups, group_targets, self._generator
            )
        else:
            new_digit = self._extend_digits_scalar(suffixes, group_targets)
        self._matrix[:, self._t] = new_digit
        self._codes = suffixes * self.alphabet + new_digit
        self._t += 1

    def _extend_digits_scalar(
        self, suffixes: np.ndarray, group_targets: np.ndarray
    ) -> np.ndarray:
        """Reference extension: one sequential draw per synthetic record.

        Walks the records in index order and samples each one's next
        symbol without replacement from its suffix group's remaining
        quota — the paper-pseudocode granularity the vectorized argsort
        path replaces.  Produces the same uniform assignment law as
        :func:`_assign_within_groups` from a different generator stream.
        """
        remaining = group_targets.astype(np.int64).copy()
        new_digit = np.zeros(self.m, dtype=np.int64)
        if not group_targets[:, 1:].any():
            return new_digit
        for i in range(self.m):
            row = remaining[suffixes[i]]
            u = int(self._generator.integers(int(row.sum())))
            c = 0
            acc = int(row[0])
            while u >= acc:
                c += 1
                acc += int(row[c])
            new_digit[i] = c
            row[c] -= 1
        return new_digit

    def as_dataset(self, t: int | None = None):
        """The synthetic panel through round ``t`` (default: current).

        Returns a :class:`~repro.data.dataset.LongitudinalDataset` for
        the binary alphabet and a
        :class:`~repro.data.categorical.CategoricalDataset` otherwise.
        """
        t = self._t if t is None else t
        if not self.window <= t <= self._t:
            raise ConfigurationError(f"t must lie in [{self.window}, {self._t}], got {t}")
        if self.alphabet == 2:
            return LongitudinalDataset(self._matrix[:, :t])
        from repro.data.categorical import CategoricalDataset

        return CategoricalDataset(self._matrix[:, :t], self.alphabet)

    def state_dict(self, *, copy: bool = True) -> dict:
        """Snapshot the store: record matrix, window codes, and clocks.

        Parameters
        ----------
        copy:
            Copy the arrays (default).  ``copy=False`` returns live views
            for the streaming checkpoint writer; consume them before the
            store extends again.

        Returns
        -------
        dict
            Scalars plus the ``codes`` and ``matrix`` arrays; array values
            stay NumPy arrays for the :mod:`repro.serve` bundle layer.
            The store's generator is shared with (and serialized by) its
            owning synthesizer, so it is *not* captured here.
        """
        return {
            "window": self.window,
            "horizon": self.horizon,
            "alphabet": self.alphabet,
            "m": self.m,
            "t": self._t,
            "codes": self._codes.copy() if copy else self._codes,
            "matrix": self._matrix.copy() if copy else self._matrix,
            "active": self._active.copy() if copy else self._active,
        }

    @classmethod
    def from_state(
        cls,
        state: dict,
        generator: np.random.Generator,
        assign: str = "vectorized",
    ) -> "WindowSyntheticStore":
        """Rebuild a store from :meth:`state_dict` output.

        Parameters
        ----------
        state:
            A snapshot produced by :meth:`state_dict`.
        generator:
            The generator future :meth:`extend` calls draw from (the
            owning synthesizer's generator, whose bit state the caller
            restores separately).
        assign:
            Extension-assignment engine the restored store should use
            (``"vectorized"`` or ``"scalar"``) — an engine choice, not
            snapshot state, so the owner passes it explicitly.

        Returns
        -------
        WindowSyntheticStore
            A store continuing exactly where the snapshot left off.  No
            randomness is consumed — unlike ``__init__``, which shuffles
            the initial records.

        Raises
        ------
        repro.exceptions.SerializationError
            If the snapshot is structurally invalid or its array shapes
            disagree with the recorded dimensions.
        """
        if assign not in ("vectorized", "scalar"):
            raise SerializationError(
                f"assign must be 'vectorized' or 'scalar', got {assign!r}"
            )
        store = object.__new__(cls)
        try:
            store.window = int(state["window"])
            store.horizon = int(state["horizon"])
            store.alphabet = int(state.get("alphabet", 2))
            store.m = int(state["m"])
            store._t = int(state["t"])
            store._codes = np.array(state["codes"], dtype=np.int64)
            store._active = np.array(state["active"], dtype=bool)
            if store.alphabet < 2:
                raise ValueError(f"alphabet must be at least 2, got {store.alphabet}")
            store._matrix = np.array(
                state["matrix"], dtype=_digit_dtype(store.alphabet)
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid window-store state: {exc}") from exc
        store._assign = assign
        store._generator = generator
        if store._active.shape != (store.m,):
            raise SerializationError(
                f"window-store active mask has shape {store._active.shape}, "
                f"expected ({store.m},)"
            )
        if store._matrix.shape != (store.m, store.horizon):
            raise SerializationError(
                f"window-store matrix has shape {store._matrix.shape}, "
                f"expected {(store.m, store.horizon)}"
            )
        if store._codes.shape != (store.m,):
            raise SerializationError(
                f"window-store codes have shape {store._codes.shape}, expected ({store.m},)"
            )
        if not store.window <= store._t <= store.horizon:
            raise SerializationError(
                f"window-store clock {store._t} outside "
                f"[{store.window}, {store.horizon}]"
            )
        return store


class CumulativeSyntheticStore:
    """Synthetic records for Algorithm 2.

    Starts with ``m`` all-zero histories; each round, :meth:`extend` flips
    the prescribed number of records within each exact-weight group.
    """

    def __init__(self, m: int, horizon: int, generator: np.random.Generator):
        if m <= 0:
            raise ConfigurationError(f"m must be positive, got {m}")
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        self.m = int(m)
        self.horizon = int(horizon)
        self._generator = generator
        self._matrix = np.zeros((m, horizon), dtype=np.uint8)
        self._weights = np.zeros(m, dtype=np.int64)
        self._active = np.ones(m, dtype=bool)
        self._t = 0

    @property
    def t(self) -> int:
        """Rounds materialized so far."""
        return self._t

    @property
    def n_active(self) -> int:
        """Records not yet retired (present synthetic individuals)."""
        return int(self._active.sum())

    @property
    def n_retired(self) -> int:
        """Records frozen via :meth:`retire`."""
        return self.m - self.n_active

    def admit(self, count: int) -> None:
        """Append ``count`` entrant records at weight 0 (zero history).

        Entrants are eligible to receive a 1 in their entry round, so
        admission must happen *before* that round's :meth:`extend`.  No
        randomness is consumed.
        """
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        self._matrix = np.vstack(
            [self._matrix, np.zeros((count, self.horizon), dtype=np.uint8)]
        )
        self._weights = np.concatenate([self._weights, np.zeros(count, dtype=np.int64)])
        self._active = np.concatenate([self._active, np.ones(count, dtype=bool)])
        self.m += count

    def retire(self, count: int) -> None:
        """Mark ``count`` uniformly-random active records as departed.

        Real departures' weights are private, so the records to mark are
        chosen uniformly at random among the active ones.  Retirement is
        aggregate bookkeeping (``n_active`` and the active mask): marked
        records still count in :meth:`threshold_census` — the released
        table covers the zero-filled departed population — and still
        extend, because the synthetic panel matches the release
        *collectively* rather than record by record.
        """
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        active_idx = np.flatnonzero(self._active)
        if count > active_idx.shape[0]:
            raise ConsistencyError(
                f"cannot retire {count} records; only {active_idx.shape[0]} active"
            )
        chosen = self._generator.choice(active_idx, size=count, replace=False)
        self._active[chosen] = False

    def active_mask(self) -> np.ndarray:
        """Per-record active flags (copy), aligned with the record matrix."""
        return self._active.copy()

    def weights(self) -> np.ndarray:
        """Current Hamming weight per synthetic record (copy)."""
        return self._weights.copy()

    def threshold_census(self) -> np.ndarray:
        """``#{records with weight >= b}`` for ``b = 0, ..., T``."""
        by_weight = np.bincount(self._weights, minlength=self.horizon + 1)
        return by_weight[::-1].cumsum()[::-1].astype(np.int64)

    def extend(self, ones_per_prev_weight: np.ndarray) -> None:
        """Advance one round.

        ``ones_per_prev_weight[w]`` records among those with current weight
        exactly ``w`` receive a 1 this round (this is ``z^_b`` for
        ``b = w + 1``); everyone else receives a 0.  The vector may have any
        length up to ``t + 1``; missing entries mean 0.
        """
        if self._t >= self.horizon:
            raise ConsistencyError(f"store already materialized all {self.horizon} rounds")
        requested = np.asarray(ones_per_prev_weight, dtype=np.int64)
        if (requested < 0).any():
            raise ConsistencyError("ones_per_prev_weight must be non-negative")
        picks = np.zeros(self._t + 1, dtype=np.int64)
        if requested.shape[0] > picks.shape[0]:
            if requested[picks.shape[0] :].any():
                raise ConsistencyError(
                    f"cannot request ones for weights above t={self._t}"
                )
            requested = requested[: picks.shape[0]]
        picks[: requested.shape[0]] = requested

        ones_idx = _choose_within_groups(
            self._weights, self._t + 1, picks, self._generator
        )
        self._matrix[ones_idx, self._t] = 1
        self._weights[ones_idx] += 1
        self._t += 1

    def as_dataset(self, t: int | None = None) -> LongitudinalDataset:
        """The synthetic panel through round ``t`` (default: current)."""
        t = self._t if t is None else t
        if not 1 <= t <= self._t:
            raise ConfigurationError(f"t must lie in [1, {self._t}], got {t}")
        return LongitudinalDataset(self._matrix[:, :t])

    def extend_horizon(self, k: int) -> None:
        """Widen the record matrix by ``k`` zero-filled future rounds.

        The dynamic-population half of
        :meth:`repro.core.cumulative.CumulativeSynthesizer.extend_horizon`:
        existing records and weights are untouched and no randomness is
        consumed.
        """
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self._matrix = np.hstack(
            [self._matrix, np.zeros((self.m, k), dtype=np.uint8)]
        )
        self.horizon += int(k)

    def state_dict(self, *, copy: bool = True) -> dict:
        """Snapshot the store: record matrix, weights, and clocks.

        Parameters
        ----------
        copy:
            Copy the arrays (default).  ``copy=False`` returns live views
            for the streaming checkpoint writer; consume them before the
            store extends again.

        Returns
        -------
        dict
            Scalars plus the ``weights`` and ``matrix`` arrays; array
            values stay NumPy arrays for the :mod:`repro.serve` bundle
            layer.  The shared generator is serialized by the owning
            synthesizer, not here.
        """
        return {
            "m": self.m,
            "horizon": self.horizon,
            "t": self._t,
            "weights": self._weights.copy() if copy else self._weights,
            "matrix": self._matrix.copy() if copy else self._matrix,
            "active": self._active.copy() if copy else self._active,
        }

    @classmethod
    def from_state(
        cls, state: dict, generator: np.random.Generator
    ) -> "CumulativeSyntheticStore":
        """Rebuild a store from :meth:`state_dict` output.

        Parameters
        ----------
        state:
            A snapshot produced by :meth:`state_dict`.
        generator:
            The generator future :meth:`extend` calls draw from.

        Returns
        -------
        CumulativeSyntheticStore
            A store continuing exactly where the snapshot left off.

        Raises
        ------
        repro.exceptions.SerializationError
            If the snapshot is structurally invalid or its array shapes
            disagree with the recorded dimensions.
        """
        store = object.__new__(cls)
        try:
            store.m = int(state["m"])
            store.horizon = int(state["horizon"])
            store._t = int(state["t"])
            store._weights = np.array(state["weights"], dtype=np.int64)
            store._matrix = np.array(state["matrix"], dtype=np.uint8)
            store._active = np.array(state["active"], dtype=bool)
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid cumulative-store state: {exc}") from exc
        store._generator = generator
        if store._active.shape != (store.m,):
            raise SerializationError(
                f"cumulative-store active mask has shape {store._active.shape}, "
                f"expected ({store.m},)"
            )
        if store._matrix.shape != (store.m, store.horizon):
            raise SerializationError(
                f"cumulative-store matrix has shape {store._matrix.shape}, "
                f"expected {(store.m, store.horizon)}"
            )
        if store._weights.shape != (store.m,):
            raise SerializationError(
                f"cumulative-store weights have shape {store._weights.shape}, "
                f"expected ({store.m},)"
            )
        if not 0 <= store._t <= store.horizon:
            raise SerializationError(
                f"cumulative-store clock {store._t} outside [0, {store.horizon}]"
            )
        return store
