"""The paper's core contribution: the two continual synthesizers.

* :class:`FixedWindowSynthesizer` — Algorithm 1: continual DP synthetic data
  preserving every length-``k`` sliding-window histogram.
* :class:`CumulativeSynthesizer` — Algorithm 2: continual DP synthetic data
  preserving every Hamming-weight threshold count, generic over the stream
  counters in :mod:`repro.streams`.

Both window synthesizers — the binary :class:`FixedWindowSynthesizer`
and the multi-category :class:`CategoricalWindowSynthesizer` — are thin
specializations of one alphabet-generic vectorized core,
:mod:`repro.core.window_engine` (binary is the bit-exact ``q = 2``
special case).

Supporting machinery: overlap-consistency projection, binary and
base-``q`` (:mod:`repro.core.consistency`), padding (:mod:`repro.core.padding`),
cross-counter monotonization (:mod:`repro.core.monotonize`), per-threshold
budget allocation (:mod:`repro.core.budget`), synthetic record stores
(:mod:`repro.core.synthetic_store`), debiasing post-processing
(:mod:`repro.core.debias`), and dynamic-population lifespan bookkeeping
(:mod:`repro.core.population` — both synthesizers accept per-round
entry/exit under the zero-fill neighboring relation).
"""

from repro.core.budget import allocate_budget, corollary_b1_split, uniform_split
from repro.core.categorical_window import (
    CategoricalWindowRelease,
    CategoricalWindowSynthesizer,
)
from repro.core.consistency import apply_overlap_correction, check_window_consistency
from repro.core.cumulative import CumulativeRelease, CumulativeSynthesizer
from repro.core.debias import debias_count_answer, lift_window_weights
from repro.core.fixed_window import FixedWindowRelease, FixedWindowSynthesizer
from repro.core.monotonize import is_monotone_table, monotonize_row, monotonize_rows
from repro.core.multi_attribute import (
    AttributeSpec,
    MultiAttributeRelease,
    MultiAttributeSynthesizer,
)
from repro.core.padding import PaddingSpec
from repro.core.replicated import ReplicatedCumulativeRelease, replicate_cumulative

__all__ = [
    "FixedWindowSynthesizer",
    "FixedWindowRelease",
    "CumulativeSynthesizer",
    "CumulativeRelease",
    "CategoricalWindowSynthesizer",
    "CategoricalWindowRelease",
    "MultiAttributeSynthesizer",
    "MultiAttributeRelease",
    "AttributeSpec",
    "PaddingSpec",
    "apply_overlap_correction",
    "check_window_consistency",
    "monotonize_row",
    "monotonize_rows",
    "is_monotone_table",
    "ReplicatedCumulativeRelease",
    "replicate_cumulative",
    "allocate_budget",
    "uniform_split",
    "corollary_b1_split",
    "debias_count_answer",
    "lift_window_weights",
]
