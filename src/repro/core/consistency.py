"""Overlap-consistency projection for Algorithm 1.

When the sliding window advances from ``t`` to ``t+1``, the two windows
overlap on ``k-1`` positions.  A synthetic record whose window ended in
suffix ``z`` (a ``(k-1)``-bit string) at time ``t`` must extend into
pattern ``z0`` or ``z1`` at time ``t+1``, so the new synthetic histogram is
*feasible* only if

    p_{z0}^{t+1} + p_{z1}^{t+1}  =  p_{0z}^t + p_{1z}^t    for every z.

The paper enforces this by a per-pair correction
``Delta_z = (M_z - (C^_{z0} + C^_{z1})) / 2`` added to both noisy counts,
with a fair ±1/2 rounding when ``Delta_z`` is a half-integer (Equations
1-4).  The crucial property (used in the Theorem 3.2 error recursion) is
that the correction *splits the pair's total discrepancy evenly*, so the
per-bin error stays mean-zero with time-uniform variance.

Pattern-code conventions (big-endian, oldest bit first — matching
:meth:`LongitudinalDataset.window_codes`):

* pattern ``0z`` has code ``z``; pattern ``1z`` has code ``z + 2**(k-1)``;
* pattern ``z0`` has code ``2 z``; pattern ``z1`` has code ``2 z + 1``.

The base-``q`` generalization (:func:`apply_group_correction` /
:func:`group_totals` / :func:`check_group_consistency`) lives here too:
the paper's categorical extension distributes each overlap group's
discrepancy evenly over its ``q`` children, and the binary pair
correction is exactly its ``q = 2`` case with the tighter fair-rounding
analysis.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, NegativeCountError

__all__ = [
    "apply_overlap_correction",
    "apply_group_correction",
    "pair_totals",
    "group_totals",
    "check_window_consistency",
    "check_group_consistency",
]


def pair_totals(previous_counts: np.ndarray) -> np.ndarray:
    """``M_z = p_{0z}^t + p_{1z}^t`` for every ``(k-1)``-bit suffix ``z``.

    ``previous_counts`` is the length ``2**k`` synthetic histogram at time
    ``t``; the result has length ``2**(k-1)`` (length 1 when ``k = 1`` —
    the single "empty suffix" group containing every record).
    """
    counts = np.asarray(previous_counts, dtype=np.int64)
    n_bins = counts.shape[0]
    if n_bins < 2 or n_bins & (n_bins - 1):
        raise ConfigurationError(f"histogram length must be a power of two >= 2, got {n_bins}")
    half = n_bins // 2
    return counts[:half] + counts[half:]


def apply_overlap_correction(
    previous_counts: np.ndarray,
    noisy_counts: np.ndarray,
    generator: np.random.Generator,
    on_negative: str = "redistribute",
) -> tuple[np.ndarray, int]:
    """Project noisy counts onto the consistency constraint set.

    Parameters
    ----------
    previous_counts:
        Synthetic histogram ``p^t`` (length ``2**k``, non-negative ints).
    noisy_counts:
        Noisy padded histogram ``C^_{t+1}`` (length ``2**k`` ints, possibly
        negative).
    generator:
        Source of the fair rounding bits ``b_z``.
    on_negative:
        ``"redistribute"`` clamps a negative target into ``[0, M_z]`` while
        keeping the pair total (the documented deviation used outside the
        Theorem 3.2 good event); ``"raise"`` raises
        :class:`NegativeCountError` instead.

    Returns
    -------
    ``(new_counts, n_negative_events)`` — the consistent histogram
    ``p^{t+1}`` and how many pairs needed the negative-count fallback.
    """
    if on_negative not in ("redistribute", "raise"):
        raise ConfigurationError(
            f"on_negative must be 'redistribute' or 'raise', got {on_negative!r}"
        )
    previous = np.asarray(previous_counts, dtype=np.int64)
    noisy = np.asarray(noisy_counts, dtype=np.int64)
    if previous.shape != noisy.shape:
        raise ConfigurationError(
            f"histogram shapes differ: {previous.shape} vs {noisy.shape}"
        )
    totals = pair_totals(previous)  # M_z, length 2**(k-1)
    c_even = noisy[0::2]  # C^_{z0}
    c_odd = noisy[1::2]  # C^_{z1}

    # 2*Delta_z; even entries divide exactly, odd entries get a fair +-1.
    double_delta = totals - (c_even + c_odd)
    odd = (double_delta & 1).astype(bool)
    rounding = np.where(
        odd, generator.integers(0, 2, size=totals.shape[0]) * 2 - 1, 0
    ).astype(np.int64)
    p_even = c_even + (double_delta + rounding) // 2
    p_odd = totals - p_even

    negative = (p_even < 0) | (p_odd < 0)
    n_events = int(negative.sum())
    if n_events and on_negative == "raise":
        bad = int(np.flatnonzero(negative)[0])
        raise NegativeCountError(
            f"target count went negative for suffix pair z={bad}: "
            f"p_z0={p_even[bad]}, p_z1={p_odd[bad]} (pair total {totals[bad]}); "
            "increase n_pad or use on_negative='redistribute'"
        )
    if n_events:
        # At most one side of a pair can be negative (they sum to M_z >= 0).
        p_even = np.clip(p_even, 0, totals)
        p_odd = totals - p_even

    new_counts = np.empty_like(noisy)
    new_counts[0::2] = p_even
    new_counts[1::2] = p_odd
    return new_counts, n_events


def check_window_consistency(previous_counts: np.ndarray, new_counts: np.ndarray) -> bool:
    """True iff ``p^{t+1}`` is feasible given ``p^t`` (the §3.1 constraint)."""
    new = np.asarray(new_counts, dtype=np.int64)
    if (new < 0).any():
        return False
    totals = pair_totals(previous_counts)
    return bool((new[0::2] + new[1::2] == totals).all())


# ----------------------------------------------------------------------
# Base-q generalization (the paper's categorical extension)
# ----------------------------------------------------------------------


def group_totals(previous_counts: np.ndarray, alphabet: int) -> np.ndarray:
    """``M_z = sum_c p_{cz}^t`` for every ``(k-1)``-digit suffix ``z``.

    The base-``q`` generalization of :func:`pair_totals`:
    ``previous_counts`` is the length-``q**k`` synthetic histogram at time
    ``t`` (base-``q`` big-endian pattern codes, so the parents of overlap
    ``z`` are codes ``c * q**(k-1) + z``); the result has length
    ``q**(k-1)``.

    Parameters
    ----------
    previous_counts:
        Length-``q**k`` histogram.
    alphabet:
        Number of categories ``q >= 2``.
    """
    counts = np.asarray(previous_counts, dtype=np.int64)
    if alphabet < 2:
        raise ConfigurationError(f"alphabet must be at least 2, got {alphabet}")
    n_bins = counts.shape[0]
    n_groups, remainder = divmod(n_bins, alphabet)
    if counts.ndim != 1 or n_groups == 0 or remainder:
        raise ConfigurationError(
            f"histogram length must be a positive multiple of {alphabet}, got {n_bins}"
        )
    return counts.reshape(alphabet, n_groups).sum(axis=0)


def apply_group_correction(
    previous_counts: np.ndarray,
    noisy_counts: np.ndarray,
    alphabet: int,
    generator: np.random.Generator,
    on_negative: str = "redistribute",
    method: str = "vectorized",
) -> tuple[np.ndarray, int]:
    """Project noisy base-``q`` counts onto the consistency constraint set.

    The categorical generalization of :func:`apply_overlap_correction`:
    with overlap group totals ``M_z`` (:func:`group_totals`), each group's
    discrepancy ``D_z = M_z - sum_c C^_{zc}`` is distributed evenly — every
    child ``zc`` receives ``floor(D_z / q)`` and the residue ``D_z mod q``
    goes to that many children chosen uniformly at random (the fair
    ``+-1/2`` rounding of the binary case is ``q = 2``).

    Parameters
    ----------
    previous_counts:
        Synthetic histogram ``p^t`` (length ``q**k``, non-negative ints).
    noisy_counts:
        Noisy padded histogram ``C^_{t+1}`` (length ``q**k`` ints,
        possibly negative).
    alphabet:
        Number of categories ``q >= 2``.
    generator:
        Source of the residue-placement randomness.
    on_negative:
        ``"redistribute"`` clamps a negative target into ``[0, M_z]``
        while keeping the group total (the documented deviation outside
        the good event); ``"raise"`` raises :class:`NegativeCountError`.
    method:
        ``"vectorized"`` places every group's residue with one batched
        key draw and argsort; ``"scalar"`` is the per-group reference
        loop (one ``generator.choice`` call per group with a residue).
        Both produce the same uniform law from different generator
        streams.

    Returns
    -------
    ``(new_counts, n_negative_events)`` — the consistent histogram
    ``p^{t+1}`` and how many groups needed the negative-count fallback.
    """
    if on_negative not in ("redistribute", "raise"):
        raise ConfigurationError(
            f"on_negative must be 'redistribute' or 'raise', got {on_negative!r}"
        )
    if method not in ("vectorized", "scalar"):
        raise ConfigurationError(
            f"method must be 'vectorized' or 'scalar', got {method!r}"
        )
    previous = np.asarray(previous_counts, dtype=np.int64)
    noisy = np.asarray(noisy_counts, dtype=np.int64)
    if previous.shape != noisy.shape:
        raise ConfigurationError(
            f"histogram shapes differ: {previous.shape} vs {noisy.shape}"
        )
    totals = group_totals(previous, alphabet)  # M_z, length q**(k-1)
    n_bins = previous.shape[0]
    n_groups = n_bins // alphabet
    children = noisy.reshape(n_groups, alphabet).copy()

    discrepancy = totals - children.sum(axis=1)
    base, residue = np.divmod(discrepancy, alphabet)
    children += base[:, None]
    with_residue = np.flatnonzero(residue)
    if with_residue.size:
        if method == "vectorized":
            # One key per (group, child); each group's residue goes to the
            # children holding its smallest keys — a batched uniform
            # without-replacement draw for every group at once.
            keys = generator.random((with_residue.size, alphabet))
            ranks = np.argsort(np.argsort(keys, axis=1), axis=1)
            children[with_residue] += ranks < residue[with_residue, None]
        else:
            for z in with_residue:
                picks = generator.choice(
                    alphabet, size=int(residue[z]), replace=False
                )
                children[z, picks] += 1

    negative_groups = (children < 0).any(axis=1)
    n_events = int(negative_groups.sum())
    if n_events and on_negative == "raise":
        bad = int(np.flatnonzero(negative_groups)[0])
        raise NegativeCountError(
            f"target counts went negative for overlap group z={bad}: "
            f"{children[bad].tolist()} (group total {totals[bad]}); "
            "increase n_pad or use on_negative='redistribute'"
        )
    if n_events:
        for z in np.flatnonzero(negative_groups):
            row = np.maximum(children[z], 0)
            excess = int(row.sum() - totals[z])
            # Clamping only raises the sum, so excess >= 0; shave it from
            # the largest children (fallback path outside the good event).
            while excess > 0:
                top = int(row.argmax())
                take = min(excess, int(row[top]))
                row[top] -= take
                excess -= take
            children[z] = row

    return children.reshape(n_bins), n_events


def check_group_consistency(
    previous_counts: np.ndarray, new_counts: np.ndarray, alphabet: int
) -> bool:
    """True iff ``p^{t+1}`` is base-``q`` feasible given ``p^t``.

    The categorical counterpart of :func:`check_window_consistency`: the
    children of every overlap group must be non-negative and sum to the
    group total ``M_z``.

    Parameters
    ----------
    previous_counts, new_counts:
        Length-``q**k`` histograms at ``t`` and ``t+1``.
    alphabet:
        Number of categories ``q >= 2``.
    """
    new = np.asarray(new_counts, dtype=np.int64)
    if (new < 0).any():
        return False
    totals = group_totals(previous_counts, alphabet)
    child_sums = new.reshape(totals.shape[0], alphabet).sum(axis=1)
    return bool((child_sums == totals).all())
