"""Algorithm 2: continual DP synthetic data for cumulative time queries.

One DP stream counter per Hamming-weight threshold ``b = 1, ..., T`` tracks
``S_b^t = #{i : weight_i(t) >= b}`` via its increments
``z_b^t = #{i : weight_i(t-1) = b-1 and x_i^t = 1}`` (each individual
contributes at most once to each threshold's stream, so neighboring
datasets induce neighboring streams).  Per round the synthesizer:

1. feeds every active counter its increment and reads the noisy totals
   ``S~_b^t`` (stage 1);
2. monotonizes across counters,
   ``S^_b^t = min(max(S~_b^t, S^_b^{t-1}), S^_{b-1}^{t-1})`` — Lemma 4.2
   shows this clamping never increases the worst-case error — and extends
   ``z^_b^t = S^_b^t - S^_b^{t-1}`` synthetic records of weight ``b - 1``
   by a 1 (stage 2).

The synthetic population has size ``m = n`` and its weight census equals
``S^^t`` *exactly* at every round, so cumulative queries read off the
synthetic data with exactly the monotonized counters' error
(Theorem 4.4 / Corollary B.1).

The counter is pluggable (paper §1.1: "it could be implemented using an
arbitrary differentially private algorithm for tracking the sum of a stream
of bits"): pass any name registered in :mod:`repro.streams.registry`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.budget import allocate_budget
from repro.core.monotonize import is_monotone_table, monotonize_row
from repro.core.population import PopulationLedger, validate_binary_column
from repro.core.synthetic_store import CumulativeSyntheticStore
from repro.data.dataset import DynamicPanel, LongitudinalDataset
from repro.dp.accountant import ZCDPAccountant
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
    SerializationError,
)
from repro.queries.cumulative import HammingAtLeast, HammingExactly
from repro.queries.plan import AnswerCache, compile_cumulative, workload_key
from repro.rng import (
    SeedLike,
    as_generator,
    generator_state,
    restore_generator_state,
    spawn,
)
from repro.streams.registry import (
    available_counters,
    make_bank,
    make_counter,
    resolve_engine,
    restore_counter,
)
from repro.types import AttributeFrame

__all__ = [
    "CumulativeSynthesizer",
    "CumulativeRelease",
    "stream_increments",
    "counter_charge_label",
]


def stream_increments(weights: np.ndarray, column: np.ndarray, t: int) -> np.ndarray:
    """Round-``t`` stream increments, advancing ``weights`` in place.

    ``z[b-1]`` counts the individuals whose Hamming weight was exactly
    ``b - 1`` entering round ``t`` and who report 1 this round — the
    increment fed to threshold ``b``'s counter.  Shared by the serial
    synthesizer and the batched replication engine
    (:mod:`repro.core.replicated`) so their stage-1 inputs cannot drift.
    """
    z = np.bincount(weights[column == 1], minlength=t)[:t]
    weights += column
    return z


def counter_charge_label(b: int) -> str:
    """Ledger label for threshold ``b``'s stream counter.

    One definition for both engines: the batched engine's "identical zCDP
    ledger" contract compares these labels entry for entry.
    """
    return f"stream counter b={b}"


class CumulativeRelease:
    """The public artifact of a cumulative run.

    Exposes the synthetic panel, the monotonized threshold table
    ``S^_b^t``, and direct answers for :class:`HammingAtLeast` /
    :class:`HammingExactly` queries.

    Parameters
    ----------
    synthesizer:
        The owning :class:`CumulativeSynthesizer`; the release is a live
        view of its state (one cached instance per synthesizer), not a
        frozen copy.
    """

    def __init__(self, synthesizer: "CumulativeSynthesizer"):
        self._synth = synthesizer

    @property
    def t(self) -> int:
        """Rounds released so far."""
        return self._synth.t

    @property
    def m(self) -> int:
        """Number of synthetic individuals (the ever-admitted count)."""
        if self._synth._store is None:
            raise NotFittedError("no data observed yet")
        return self._synth._store.m

    def synthetic_data(self, t: int | None = None) -> LongitudinalDataset:
        """The synthetic panel through round ``t`` (default: latest).

        Under the default lazy store the records are drawn on first
        request (bit-exact with eager materialization — see
        :class:`CumulativeSynthesizer`); replication runs that only read
        query answers never pay for them.
        """
        if self._synth._store is None or self._synth.t == 0:
            raise NotFittedError("no data observed yet")
        return self._synth._materialized_store().as_dataset(t)

    def threshold_table(self) -> np.ndarray:
        """Monotonized counts ``S^_b^t``: shape ``(t+1, T+1)``, row 0 initial."""
        if self._synth._table is None:
            raise NotFittedError("no data observed yet")
        return self._synth._table[: self._synth.t + 1].copy()

    def threshold_count(self, b: int, t: int) -> int:
        """``S^_b^t`` — synthetic individuals with weight >= ``b`` at ``t``."""
        if self._synth._table is None:
            raise NotFittedError("no data observed yet")
        if not 0 <= b <= self._synth.horizon:
            raise ConfigurationError(f"b must lie in [0, {self._synth.horizon}], got {b}")
        if not 1 <= t <= self._synth.t:
            raise ConfigurationError(f"t must lie in [1, {self._synth.t}], got {t}")
        return int(self._synth._table[t, b])

    def answer(self, query, t: int) -> float:
        """Answer a cumulative query at round ``t``.

        Answers are fractions of the population *as of round* ``t`` — the
        ever-admitted count ``S^_0^t``, which equals ``m`` (and ``n``)
        whenever the population is static.  Under churn, departed
        individuals keep counting with their frozen weights (the
        zero-fill convention).
        """
        population = self.threshold_count(0, t)
        if isinstance(query, HammingAtLeast):
            return (
                self.threshold_count(query.b, t) / population
                if query.b <= self._synth.horizon
                else 0.0
            )
        if isinstance(query, HammingExactly):
            # Thresholds above the horizon are structurally empty (nobody
            # can have more ones than rounds) — same convention as the
            # at-least query and the batched replicated release.
            at_least_b = (
                self.threshold_count(query.b, t)
                if query.b <= self._synth.horizon
                else 0
            )
            above = (
                self.threshold_count(query.b + 1, t)
                if query.b + 1 <= self._synth.horizon
                else 0
            )
            return (at_least_b - above) / population
        raise ConfigurationError(
            f"cumulative release answers HammingAtLeast/HammingExactly, got {query!r}"
        )

    @property
    def version(self) -> int:
        """Monotone state version: bumped by every mutation of the owner.

        ``observe()``, ``load_state()``, and ``extend_horizon()`` each
        increment it, so equal versions guarantee equal answers — the
        key invariant behind the batched answer cache.
        """
        return self._synth._version

    def answer_batch(self, queries, times) -> np.ndarray:
        """Answer a Hamming-threshold workload as one table gather.

        Compiles the workload through
        :func:`repro.queries.plan.compile_cumulative` and evaluates the
        whole ``(len(queries), len(times))`` grid with a single NumPy
        gather over the threshold table plus one elementwise division —
        **bit-identical** with looping :meth:`answer` over every cell
        (integer counts divide exactly the same either way).  Cells with
        ``t < 1`` are ``NaN``; any other out-of-range ``t`` raises like
        the scalar call.  Results are memoized per release version, so
        repeating a workload after a round costs one dictionary lookup.
        """
        queries = list(queries)
        times = [int(t) for t in times]
        key = workload_key(queries, times)
        cache = self._synth._answer_cache
        version = self.version
        if key is not None:
            hit = cache.get(version, key)
            if hit is not None:
                return hit
        if self._synth._table is None:
            raise NotFittedError("no data observed yet")
        for query in queries:
            if not isinstance(query, (HammingAtLeast, HammingExactly)):
                raise ConfigurationError(
                    "cumulative release answers HammingAtLeast/HammingExactly, "
                    f"got {query!r}"
                )
        for t in times:
            if t >= 1 and t > self._synth.t:
                raise ConfigurationError(
                    f"t must lie in [1, {self._synth.t}], got {t}"
                )
        horizon = self._synth.horizon
        lower, upper = compile_cumulative(queries, horizon)
        out = np.full((len(queries), len(times)), np.nan, dtype=np.float64)
        valid = [i for i, t in enumerate(times) if t >= 1]
        if valid:
            t_arr = np.asarray([times[i] for i in valid], dtype=np.int64)
            table = self._synth._table
            augmented = np.concatenate(
                [table, np.zeros((table.shape[0], 1), dtype=np.int64)], axis=1
            )
            sub = augmented[t_arr]
            counts = sub[:, lower] - sub[:, upper]
            out[:, valid] = (counts / sub[:, :1]).T
        if key is not None:
            cache.put(version, key, out)
        return out

    def __repr__(self) -> str:
        return f"CumulativeRelease(t={self.t}, m={self.m if self._synth._store else '?'})"


class CumulativeSynthesizer:
    """Algorithm 2 — continual synthetic data for cumulative queries.

    Parameters
    ----------
    horizon:
        Known time horizon ``T``.
    rho:
        Total zCDP budget; split across the ``T`` per-threshold counters by
        ``budget``.  ``math.inf`` disables noise.
    counter:
        Registered stream-counter name (default ``"binary_tree"``,
        the paper's choice).
    budget:
        ``"corollary_b1"`` (default), ``"uniform"``, or an explicit
        length-``T`` sequence of per-threshold budgets summing to ``rho``.
    engine:
        ``"vectorized"`` advances all per-threshold counters as one
        batched :class:`~repro.streams.bank.CounterBank`; ``"scalar"``
        keeps the original one-Python-object-per-threshold path.  The
        default ``None`` consults ``$REPRO_ENGINE`` and falls back to
        ``"vectorized"``.  Both engines produce bit-identical releases
        under a fixed seed in noiseless mode and charge the zCDP ledger
        identically.
    noise_method:
        ``"exact"`` or ``"vectorized"`` noise backend for the counters.
    materialize:
        ``"lazy"`` (default) defers drawing synthetic records until
        :meth:`CumulativeRelease.synthetic_data` is actually requested;
        ``"eager"`` draws them every round as the records are prescribed.
        The two modes are *bit-exact*: the record draws are the only
        consumers of the synthesizer's generator after initialization, so
        replaying them in order on first request produces the same panel.
        Lazy mode is what makes pure query-answering runs (the replication
        harness answers everything from the threshold table) skip the
        per-round record bookkeeping entirely.
    counter_kwargs:
        Extra keyword arguments forwarded to every counter constructor.
    """

    def __init__(
        self,
        horizon: int,
        rho: float,
        *,
        counter: str = "binary_tree",
        budget="corollary_b1",
        seed: SeedLike = None,
        engine: str | None = None,
        noise_method: str = "exact",
        materialize: str = "lazy",
        counter_kwargs: dict | None = None,
    ):
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if not rho > 0:
            raise ConfigurationError(f"rho must be positive (or math.inf), got {rho}")
        if materialize not in ("lazy", "eager"):
            raise ConfigurationError(
                f"materialize must be 'lazy' or 'eager', got {materialize!r}"
            )
        if counter not in available_counters():
            raise ConfigurationError(
                f"unknown counter {counter!r}; available: {sorted(available_counters())}"
            )
        engine = resolve_engine(engine)
        self.horizon = int(horizon)
        self.rho = float(rho)
        self.counter_name = counter
        self.engine = engine
        self.noise_method = noise_method
        self.materialize = materialize
        self._counter_kwargs = dict(counter_kwargs or {})
        self._generator = as_generator(seed)
        self.rho_per_threshold = allocate_budget(self.horizon, self.rho, budget)
        self.accountant = None if math.isinf(self.rho) else ZCDPAccountant(self.rho)

        # Counter b (1-indexed) sees the stream z_b^t for t = b..T, of
        # length T - b + 1.  Both engines spawn the same per-threshold seed
        # streams so the surrounding randomness (synthetic store) matches.
        self._counter_seeds = spawn(self._generator, self.horizon)
        self._counters: dict[int, object] = {}
        self._bank = (
            make_bank(
                counter,
                horizon=self.horizon,
                rho_per_threshold=self.rho_per_threshold,
                seeds=self._counter_seeds,
                noise_method=noise_method,
                counter_kwargs=self._counter_kwargs,
            )
            if engine == "vectorized"
            else None
        )
        self._release_view = CumulativeRelease(self)
        self._version = 0
        self._answer_cache = AnswerCache()

        self._t = 0
        self._horizon_extended = False
        self._n: int | None = None  # initial (round-1) population
        self._ledger: PopulationLedger | None = None
        self._orig_weights: np.ndarray | None = None
        self._store: CumulativeSyntheticStore | None = None
        self._pending_increments: list[np.ndarray] = []
        self._table: np.ndarray | None = None  # S^ table, (T+1) x (T+1)

    # ------------------------------------------------------------------
    # Streaming API
    # ------------------------------------------------------------------

    @property
    def t(self) -> int:
        """Rounds observed so far."""
        return self._t

    @property
    def release(self) -> CumulativeRelease:
        """View of everything released so far (one cached instance)."""
        return self._release_view

    @property
    def bank(self):
        """The vectorized counter bank (``None`` under ``engine="scalar"``)."""
        return self._bank

    def observe(self, data, *, entrants: int = 0, exits=None) -> CumulativeRelease:
        """Consume the round-``t`` report vector ``D_t`` and update.

        Parameters
        ----------
        data:
            The round's 0/1 reports, one entry per *currently active*
            individual in ascending id (admission) order; this round's
            entrants report in the final ``entrants`` entries.  A 1-D
            vector, or a width-1 :class:`~repro.types.AttributeFrame`.
        entrants:
            Number of individuals entering this round (appended at the
            end of the column with fresh ids).  In round 1 the whole
            column is the initial admission, so ``entrants`` may flag at
            most the full column.
        exits:
            Ids of previously active individuals absent from this round
            on.  Exits are permanent; under the zero-fill convention
            their Hamming weights freeze.  Retiring an already-departed
            or unknown id raises — re-entry is not part of the model.

        Raises
        ------
        repro.exceptions.DataValidationError
            On non-binary input, a column length that disagrees with the
            declared churn, rounds past the horizon, or invalid churn
            declarations (negative entrants, re-used or unknown exit
            ids).
        """
        if isinstance(data, AttributeFrame):
            data = data.sole()
        column = np.asarray(data)
        if column.ndim != 1:
            raise DataValidationError(f"column must be 1-D, got shape {column.shape}")
        validate_binary_column(column)
        if self._t >= self.horizon:
            raise DataValidationError(f"horizon {self.horizon} already exhausted")
        entrants = int(entrants)
        if entrants < 0:
            raise DataValidationError(f"entrants must be non-negative, got {entrants}")
        exit_ids = np.asarray([] if exits is None else exits, dtype=np.int64)
        t = self._t + 1
        if self._n is None:
            if exit_ids.size:
                raise DataValidationError(
                    "round 1 admits the initial population; nobody can exit yet"
                )
            if entrants > column.shape[0]:
                raise DataValidationError(
                    f"round 1 declares {entrants} entrants but the column has "
                    f"only {column.shape[0]} reports"
                )
            self._initialize(int(column.shape[0]))
        else:
            expected = self._ledger.n_active - exit_ids.size + entrants
            if column.shape[0] != expected:
                raise DataValidationError(
                    f"column has {column.shape[0]} entries, expected {expected} "
                    f"(n_active={self._ledger.n_active}, {exit_ids.size} exits, "
                    f"{entrants} entrants)"
                )
            # Validation (and the permanent-exit check) happens before the
            # clock advances, so a rejected round leaves the stream intact.
            self._ledger.retire(exit_ids, t)
            self._ledger.admit(entrants, t)
            if entrants:
                self._orig_weights = np.concatenate(
                    [self._orig_weights, np.zeros(entrants, dtype=np.int64)]
                )
        self._t = t
        column = column.astype(np.int64)

        # Stream increments z_b^t from the *original* data, zero-filled to
        # the ever-admitted population (departed individuals structurally
        # report 0, so their weights freeze).
        full_column = self._ledger.scatter_column(column)
        z = stream_increments(self._orig_weights, full_column, t)

        # Stage 1: feed the active counters, collect noisy totals.
        if self._bank is not None:
            # One batched advance of every active counter; threshold b = t
            # activates this round, so its budget is charged now (the
            # ledger matches the scalar engine's lazy per-counter charges).
            noisy = np.rint(self._bank.feed(z)).astype(np.int64)
            if self.accountant is not None:
                self.accountant.charge(
                    float(self.rho_per_threshold[t - 1]), label=counter_charge_label(t)
                )
        else:
            noisy = np.empty(t, dtype=np.int64)
            for b in range(1, t + 1):
                counter = self._get_counter(b)
                noisy[b - 1] = round(float(counter.feed(int(z[b - 1]))))

        # Stage 2: monotonize against the previous round and extend records.
        n_ever = self._ledger.n_ever
        previous = self._table[t - 1, : t + 1]
        if int(previous[0]) != n_ever:
            # Zero-fill: this round's entrants are retroactively weight-0
            # members of the previous round, so the clamp ceiling S^_0 is
            # the grown ever-population.
            previous = previous.copy()
            previous[0] = n_ever
        clamped = monotonize_row(noisy, previous, population=n_ever)
        increments = clamped - previous[1 : t + 1]  # z^_b^t for b = 1..t

        if self._ledger.churned:
            # Churn forces eager record bookkeeping: entrants must be
            # admitted before the round they first report in, so deferred
            # rounds are replayed now (bit-exact with having been eager
            # all along) and the stream stays eager from here on.
            store = self._materialized_store()
            store.retire(int(exit_ids.size))
            store.admit(entrants)
            store.extend(increments)
        elif self.materialize == "eager":
            self._store.extend(increments)  # indexed by previous weight b-1
        else:
            self._pending_increments.append(increments)

        self._table[t, 1 : t + 1] = clamped
        self._table[t, 0] = n_ever
        # Thresholds above t keep their previous (zero) values.
        self._table[t, t + 1 :] = self._table[t - 1, t + 1 :]
        self._version += 1
        return self.release

    def run(self, dataset) -> CumulativeRelease:
        """Batch driver: feed every column of ``dataset`` and return the release.

        Parameters
        ----------
        dataset:
            A static :class:`~repro.data.dataset.LongitudinalDataset`
            (every individual present for the whole horizon) or a
            :class:`~repro.data.dataset.DynamicPanel`, whose per-round
            entry/exit events are replayed through
            :meth:`observe`'s churn parameters.
        """
        if dataset.horizon != self.horizon:
            raise DataValidationError(
                f"dataset horizon {dataset.horizon} != synthesizer horizon {self.horizon}"
            )
        if self._t:
            raise ConfigurationError("run() requires a fresh synthesizer")
        if isinstance(dataset, DynamicPanel):
            for column, entrants, round_exits in dataset.rounds():
                self.observe(column, entrants=entrants, exits=round_exits)
        else:
            for column in dataset.columns():
                self.observe(column)
        return self.release

    def lifespans(self) -> np.ndarray:
        """Per-individual ``(entry_round, exit_round)`` pairs observed so far.

        Returns
        -------
        numpy.ndarray
            Shape ``(n_ever, 2)``; ``exit_round`` 0 marks a still-active
            individual.  Empty before the first round.

        Raises
        ------
        repro.exceptions.NotFittedError
            Before any data has been observed.
        """
        if self._ledger is None:
            raise NotFittedError("no data observed yet")
        return self._ledger.lifespans()

    def extend_horizon(self, k: int, rho_new) -> None:
        """Grow the release schedule by ``k`` rounds: ``T -> T + k``.

        A dynamic population can outlive its planned horizon (a churning
        panel that keeps adding waves); this appends ``k`` future rounds
        — and the ``k`` new Hamming-weight thresholds they enable — to a
        fresh *or mid-stream* synthesizer on the vectorized engine.  The
        counter bank appends rows via
        :meth:`~repro.streams.bank.CounterBank.extend_rows` without
        perturbing existing rows' RNG streams; the threshold table and
        the synthetic store widen in place.

        **Churn-aware accounting.**  Existing rows keep their original
        noise calibration, so their longer streams realize strictly more
        zCDP; that extra cost plus the new thresholds' budgets is added
        to the accountant's total via
        :meth:`~repro.dp.accountant.ZCDPAccountant.extend_budget` — the
        privacy guarantee is *explicitly weakened* to the new total, and
        each existing row's surcharge appears as a labeled ledger entry.

        Parameters
        ----------
        k:
            Number of appended rounds (positive).
        rho_new:
            Per-threshold zCDP budgets for the new thresholds
            ``T+1 .. T+k``: a scalar (replicated ``k`` times) or a
            length-``k`` sequence.  Must be ``math.inf`` exactly when
            the synthesizer runs noiseless.

        Raises
        ------
        repro.exceptions.ConfigurationError
            On the scalar engine, on banks without native row growth
            (``sqrt_factorization`` and fallback-wrapped counters), or
            on malformed ``rho_new``.

        Notes
        -----
        Checkpointing is not supported across an extension:
        :meth:`state_dict` fails closed afterwards, because a restored
        synthesizer rebuilt from the extended configuration would
        recalibrate the appended levels differently than the live bank.
        """
        if self._bank is None:
            raise ConfigurationError(
                "horizon extension requires the vectorized engine "
                "(engine='vectorized'); the scalar per-threshold counters "
                "are calibrated for a fixed horizon"
            )
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        rho_vec = np.asarray(rho_new, dtype=np.float64)
        if rho_vec.ndim == 0:
            rho_vec = np.full(k, float(rho_vec))
        if self.accountant is None and not np.isinf(rho_vec).all():
            raise ConfigurationError(
                "a noiseless synthesizer (rho=inf) extends with rho_new=math.inf"
            )
        if self.accountant is not None and not np.isfinite(rho_vec).all():
            raise ConfigurationError(
                "a noisy synthesizer extends with finite rho_new budgets"
            )
        extra = self._bank.extend_rows(k, rho_vec)  # validates k and rho_new
        old_horizon = self.horizon
        self.horizon += int(k)
        self.rho_per_threshold = np.concatenate([self.rho_per_threshold, rho_vec])
        # _counter_seeds stays at its original length: the vectorized bank
        # draws from its own generator, and both consumers of per-threshold
        # seeds (the scalar engine and serialization) are unreachable after
        # an extension — spawning seeds here would only perturb the shared
        # record-draw generator.
        if self.accountant is not None:
            self.accountant.extend_budget(
                float(rho_vec.sum() + extra.sum()),
                reason=f"horizon extension +{k} rounds",
            )
            self.rho = self.accountant.total_rho
            for b in range(1, old_horizon + 1):
                if extra[b - 1] > 0:
                    self.accountant.charge(
                        float(extra[b - 1]),
                        label=f"horizon extension surcharge, {counter_charge_label(b)}",
                    )
        if self._table is not None:
            table = np.zeros((self.horizon + 1, self.horizon + 1), dtype=np.int64)
            table[: old_horizon + 1, : old_horizon + 1] = self._table
            self._table = table
            self._store.extend_horizon(int(k))
        self._horizon_extended = True
        self._version += 1

    def counter_error_stddev(self, b: int, position: int) -> float | None:
        """Error stddev of threshold ``b``'s counter at local stream ``position``.

        Engine-agnostic accessor used by the confidence-interval machinery:
        returns ``None`` while threshold ``b`` has not activated yet (its
        estimate is the exact constant 0), otherwise the counter's / bank
        row's analytic stddev.
        """
        if not 1 <= b <= self.horizon:
            raise ConfigurationError(f"b must lie in [1, {self.horizon}], got {b}")
        if self._bank is not None:
            if b > self._bank.active:
                return None
            return self._bank.error_stddev(b, position)
        counter = self._counters.get(b)
        if counter is None:
            return None
        return counter.error_stddev(position)

    def check_invariants(self) -> bool:
        """Verify the release invariants (used by tests and examples).

        The monotonicity constraints hold on the whole table and the
        synthetic weight census equals the table row exactly.
        """
        if self._table is None or self._t == 0:
            return True
        table = self._table[: self._t + 1]
        population = table[:, 0] if self._ledger.churned else self._n
        if not is_monotone_table(table, population=population):
            return False
        census = self._materialized_store().threshold_census()
        return bool((census == self._table[self._t]).all())

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def config_dict(self) -> dict:
        """The constructor arguments needed to rebuild this synthesizer.

        Returns
        -------
        dict
            JSON-safe mapping with ``algorithm: "cumulative"`` plus the
            horizon, budget (as the resolved explicit per-threshold
            vector), counter name, engine, noise method, materialization
            mode, and counter kwargs.  :meth:`from_config` consumes it;
            the seed is deliberately absent — a restored synthesizer gets
            its randomness from the serialized generator states, not from
            re-seeding.
        """
        return {
            "algorithm": "cumulative",
            "horizon": self.horizon,
            "rho": self.rho,
            "counter": self.counter_name,
            "budget": [float(r) for r in self.rho_per_threshold],
            "engine": self.engine,
            "noise_method": self.noise_method,
            "materialize": self.materialize,
            "counter_kwargs": dict(self._counter_kwargs),
        }

    @classmethod
    def from_config(cls, config: dict) -> "CumulativeSynthesizer":
        """Rebuild a fresh synthesizer from :meth:`config_dict` output.

        Parameters
        ----------
        config:
            A mapping produced by :meth:`config_dict`.

        Returns
        -------
        CumulativeSynthesizer
            An unfitted synthesizer with the same configuration, ready
            for :meth:`load_state`.

        Raises
        ------
        repro.exceptions.SerializationError
            If required keys are missing or fail constructor validation.
        """
        try:
            return cls(
                int(config["horizon"]),
                float(config["rho"]),
                counter=str(config["counter"]),
                budget=config["budget"],
                engine=str(config["engine"]),
                noise_method=str(config["noise_method"]),
                materialize=str(config["materialize"]),
                counter_kwargs=dict(config["counter_kwargs"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid cumulative config: {exc}") from exc

    def state_dict(self, *, copy: bool = True) -> dict:
        """Snapshot the full mid-stream state.

        Parameters
        ----------
        copy:
            Copy the state arrays into the snapshot (default).
            ``copy=False`` returns live views of the synthesizer's
            buffers — the streaming checkpoint writer uses this to spool
            state into the bundle without a second in-RAM copy; such a
            snapshot must be consumed before the next round.

        Returns
        -------
        dict
            The clock, population size, original-data weights, the
            monotonized threshold table, any deferred (lazy) record
            increments, the synthetic store, the zCDP ledger, the main
            generator's bit state, the per-threshold counter seed states,
            and the engine state (bank arrays or per-counter scalar
            states).  Array leaves stay NumPy arrays for the
            :mod:`repro.serve` bundle layer; everything else is
            JSON-safe.
        """
        if self._horizon_extended:
            raise SerializationError(
                "checkpointing across extend_horizon() is not supported: a "
                "restored bank would recalibrate the appended rows differently"
            )
        state = {
            "t": self._t,
            "n": self._n,
            "generator": generator_state(self._generator),
            "counter_seeds": [generator_state(g) for g in self._counter_seeds],
            "accountant": None if self.accountant is None else self.accountant.to_dict(),
        }
        if self._n is not None:
            state["ledger"] = self._ledger.state_dict(copy=copy)
            state["orig_weights"] = (
                self._orig_weights.copy() if copy else self._orig_weights
            )
            state["table"] = self._table.copy() if copy else self._table
            state["pending"] = {
                str(index): increments.copy() if copy else increments
                for index, increments in enumerate(self._pending_increments)
            }
            state["pending_count"] = len(self._pending_increments)
            state["store"] = self._store.state_dict(copy=copy)
        if self._bank is not None:
            state["engine_state"] = {
                "kind": "bank",
                "bank": self._bank.state_dict(copy=copy),
            }
        else:
            state["engine_state"] = {
                "kind": "scalar",
                "counters": {
                    str(b): counter.state_dict() for b, counter in self._counters.items()
                },
            }
        return state

    def load_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict` in place.

        Must be called on a *fresh* synthesizer built with the same
        configuration (use :meth:`from_config`).  After loading, every
        subsequent :meth:`observe` — and any deferred synthetic
        record materialization — is byte-identical to the uninterrupted
        run, noise included.

        Parameters
        ----------
        state:
            A snapshot produced by :meth:`state_dict`.

        Raises
        ------
        repro.exceptions.SerializationError
            If the snapshot is structurally invalid, disagrees with this
            synthesizer's configuration (horizon, engine, counter), or
            its ledger exceeds the budget.
        """
        if self._t:
            raise SerializationError("load_state() requires a fresh synthesizer")
        try:
            t = int(state["t"])
            n = state["n"]
            seed_states = list(state["counter_seeds"])
            engine_state = dict(state["engine_state"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid cumulative state: {exc}") from exc
        if not 0 <= t <= self.horizon:
            raise SerializationError(f"clock {t} outside [0, horizon={self.horizon}]")
        if len(seed_states) != self.horizon:
            raise SerializationError(
                f"snapshot has {len(seed_states)} counter seeds, "
                f"expected horizon={self.horizon}"
            )
        if (n is None) != (t == 0):
            raise SerializationError(f"population {n!r} inconsistent with clock {t}")
        restore_generator_state(self._generator, state["generator"])
        for generator, seed_state in zip(self._counter_seeds, seed_states):
            restore_generator_state(generator, seed_state)
        if state.get("accountant") is None:
            if self.accountant is not None:
                raise SerializationError("snapshot has no ledger but rho is finite")
        else:
            if self.accountant is None:
                raise SerializationError("snapshot has a ledger but rho is infinite")
            self.accountant = ZCDPAccountant.from_dict(state["accountant"])
        self._t = t
        if n is not None:
            self._n = int(n)
            self._ledger = PopulationLedger.from_state(state.get("ledger", {}))
            try:
                self._orig_weights = np.array(state["orig_weights"], dtype=np.int64)
                table = np.array(state["table"], dtype=np.int64)
                pending = dict(state["pending"])
                pending_keys = sorted(int(key) for key in pending)
                if pending_keys != list(range(len(pending))):
                    raise SerializationError(
                        f"pending increments must cover 0..{len(pending) - 1}, "
                        f"got {pending_keys}"
                    )
                if int(state["pending_count"]) != len(pending):
                    raise SerializationError(
                        f"pending_count={state['pending_count']} disagrees with "
                        f"{len(pending)} pending entries"
                    )
                self._pending_increments = [
                    np.array(pending[str(i)], dtype=np.int64)
                    for i in range(len(pending))
                ]
                self._store = CumulativeSyntheticStore.from_state(
                    state["store"], self._generator
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise SerializationError(f"invalid cumulative state: {exc}") from exc
            if self._ledger.n_ever < self._n:
                raise SerializationError(
                    f"lifespan table covers {self._ledger.n_ever} individuals "
                    f"but the initial population was {self._n}"
                )
            if self._orig_weights.shape != (self._ledger.n_ever,):
                raise SerializationError(
                    f"orig_weights has shape {self._orig_weights.shape}, "
                    f"expected ({self._ledger.n_ever},)"
                )
            expected = (self.horizon + 1, self.horizon + 1)
            if table.shape != expected:
                raise SerializationError(
                    f"threshold table has shape {table.shape}, expected {expected}"
                )
            self._table = table
        kind = engine_state.get("kind")
        if self._bank is not None:
            if kind != "bank":
                raise SerializationError(
                    f"snapshot engine state is {kind!r} but this synthesizer "
                    "uses the vectorized engine"
                )
            try:
                bank_state = engine_state["bank"]
            except KeyError as exc:
                raise SerializationError(
                    "bank engine state is missing its 'bank' entry"
                ) from exc
            self._bank.load_state(bank_state)
        else:
            if kind != "scalar":
                raise SerializationError(
                    f"snapshot engine state is {kind!r} but this synthesizer "
                    "uses the scalar engine"
                )
            try:
                payloads = {
                    int(key): payload
                    for key, payload in dict(engine_state["counters"]).items()
                }
            except (KeyError, TypeError, ValueError) as exc:
                raise SerializationError(f"invalid scalar engine state: {exc}") from exc
            # One counter activates per round, so a snapshot at clock t
            # must hold exactly thresholds 1..t — a missing one would
            # silently restart at a fresh clock (and double-charge the
            # restored ledger) rounds after the restore.
            if sorted(payloads) != list(range(1, t + 1)):
                raise SerializationError(
                    f"scalar engine state must hold counters 1..{t}, "
                    f"got {sorted(payloads)}"
                )
            self._counters = {}
            for b, payload in payloads.items():
                self._counters[b] = restore_counter(
                    self.counter_name,
                    horizon=self.horizon - b + 1,
                    rho=float(self.rho_per_threshold[b - 1]),
                    seed=self._counter_seeds[b - 1],
                    noise_method=self.noise_method,
                    payload=payload,
                    counter_kwargs=self._counter_kwargs,
                )
        self._version += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _initialize(self, n: int) -> None:
        if n <= 0:
            raise DataValidationError(f"need at least one individual, got n={n}")
        self._n = n
        self._ledger = PopulationLedger()
        self._ledger.admit(n, 1)
        self._orig_weights = np.zeros(n, dtype=np.int64)
        self._store = CumulativeSyntheticStore(n, self.horizon, self._generator)
        self._pending_increments: list[np.ndarray] = []
        self._table = np.zeros((self.horizon + 1, self.horizon + 1), dtype=np.int64)
        self._table[0, 0] = n
        self._table[:, 0] = n

    def _materialized_store(self) -> CumulativeSyntheticStore:
        """Replay any deferred record draws and return the store.

        Deferred rounds are extended in release order, so the generator
        consumption — and hence the synthetic panel — is identical to
        eager materialization.
        """
        for increments in self._pending_increments:
            self._store.extend(increments)
        self._pending_increments.clear()
        return self._store

    def _get_counter(self, b: int):
        counter = self._counters.get(b)
        if counter is None:
            length = self.horizon - b + 1
            rho_b = float(self.rho_per_threshold[b - 1])
            counter = make_counter(
                self.counter_name,
                horizon=length,
                rho=rho_b,
                seed=self._counter_seeds[b - 1],
                noise_method=self.noise_method,
                **self._counter_kwargs,
            )
            if self.accountant is not None:
                self.accountant.charge(rho_b, label=counter_charge_label(b))
            self._counters[b] = counter
        return counter
