"""Algorithm 1: continual DP synthetic data for fixed time window queries.

Per update step ``t = k, ..., T`` the synthesizer

1. counts the length-``k`` window patterns in the original data and releases
   a noisy padded histogram
   ``C^_s^t = C_s^t + n_pad + N_Z(0, (T-k+1)/(2 rho))`` per bin
   (stage 1 — :class:`~repro.dp.mechanisms.GaussianHistogramMechanism`);
2. projects the noisy histogram onto the overlap-consistency constraint set
   (stage 2 — :func:`~repro.core.consistency.apply_overlap_correction`) and
   extends every synthetic record by one bit so the synthetic window
   histogram equals the projected counts exactly
   (:class:`~repro.core.synthetic_store.WindowSyntheticStore`).

The whole run satisfies ``rho``-zCDP (Theorem 3.1); every bin count is
within the Theorem 3.2 bound of ``C_s^t + n_pad`` with probability
``1 - beta``, and the debiased answers are unbiased (§3.2).

Structurally, :class:`FixedWindowSynthesizer` is the ``q = 2``
specialization of the alphabet-generic
:class:`~repro.core.window_engine.WindowEngine`: it pins the paper's fair
``+-1/2`` pair rounding and the binary column validation, and its outputs
are bit-exact — noise draws and zCDP ledger included — with the
pre-engine standalone implementation.  The multi-category instantiation
is :class:`~repro.core.categorical_window.CategoricalWindowSynthesizer`.

Typical use::

    synth = FixedWindowSynthesizer(horizon=12, window=3, rho=0.005, seed=0)
    release = synth.run(panel)                      # batch
    release.answer(AtLeastMOnes(3, 1), t=6)         # debiased by default

or streaming, one report vector per round::

    for column in panel.columns():
        synth.observe(column)
    release = synth.release
"""

from __future__ import annotations

import numpy as np

from repro.core.debias import debias_count_answer, lift_window_weights
from repro.core.population import validate_binary_column
from repro.core.window_engine import WindowEngine, WindowRelease
from repro.data.dataset import LongitudinalDataset
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
    SerializationError,
)
from repro.queries.base import WindowQuery
from repro.queries.plan import query_signature
from repro.rng import SeedLike

__all__ = ["FixedWindowSynthesizer", "FixedWindowRelease"]


class FixedWindowRelease(WindowRelease):
    """The public artifact of a fixed-window run.

    Wraps the synthetic panel, the per-round target histograms, and the
    public padding parameters; answers any window query of width at most
    ``k`` directly from the maintained histograms (debiased by default) and
    wider queries from the records themselves.  The metadata and
    churn-aware population surface is the shared
    :class:`~repro.core.window_engine.WindowRelease`.

    Parameters
    ----------
    synthesizer:
        The owning :class:`FixedWindowSynthesizer`; the release is a
        live view of its state (one cached instance per synthesizer),
        not a frozen copy.
    """

    def synthetic_data(self, t: int | None = None) -> LongitudinalDataset:
        """The synthetic panel through round ``t`` (default: latest)."""
        store = self._synth._store
        if store is None:
            raise NotFittedError("the first update step has not run yet")
        return store.as_dataset(t)

    # -- query answering -----------------------------------------------

    def answer(
        self,
        query: WindowQuery,
        t: int,
        debias: bool = True,
        padding_convention: str = "uniform",
    ) -> float:
        """Answer a window query at round ``t``.

        Queries of width ``k' <= k`` are answered from the maintained
        width-``k`` histogram (exactly equal to evaluating on the records).
        With ``debias`` (default) the publicly known padding contribution is
        subtracted and the answer renormalized by ``n`` — the §3.2
        estimator; otherwise the biased ``fraction-of-n*`` value is
        returned (the left panels of Figures 5-7).

        Queries of width ``k' > k`` are evaluated on the synthetic records
        directly.  The synthesizer gives *no accuracy guarantee* for them —
        this is precisely the Figure 3 bottom-panel caveat.

        ``padding_convention`` selects how the padding answer is computed
        when debiasing: ``"uniform"`` (paper's convention — ``n_pad`` fake
        people per bin, extrapolated for widths above ``k``) or ``"panel"``
        (evaluate the query on the materialized de Bruijn padding records;
        identical for widths <= ``k``).
        """
        query.check_time(t)
        if padding_convention not in ("uniform", "panel"):
            raise ConfigurationError(
                f"padding_convention must be 'uniform' or 'panel', got "
                f"{padding_convention!r}"
            )
        if query.k <= self.window:
            histogram = self.histogram(t)
            weights = lift_window_weights(query.weights, query.k, self.window)
            count_answer = float(weights @ histogram)
        else:
            panel = self.synthetic_data(t)
            # Entrants admitted after round t sit at the end of the record
            # matrix; exclude them so record-level answers describe the
            # round-t population (a no-op for static populations).
            m_t = self.synthetic_population(t)
            if m_t < panel.n_individuals:
                panel = LongitudinalDataset(panel.matrix[:m_t])
            count_answer = query.evaluate(panel, t) * panel.n_individuals
        if not debias:
            return count_answer / self.synthetic_population(t)
        if padding_convention == "uniform":
            padding_count = self.padding.count_contribution(query)
        else:
            padding_count = self.padding.panel_count_answer(query, t)
        return debias_count_answer(count_answer, padding_count, self.population(t))

    def _compile_batch_query(self, query, options: dict):
        """Compile a width-``k' <= k`` binary window query for the batch path.

        Returns ``None`` — scalar fallback — for record-level wide
        queries, types other than :class:`~repro.queries.base.WindowQuery`,
        and the time-dependent ``padding_convention="panel"``.
        """
        convention = options.get("padding_convention", "uniform")
        if convention != "uniform" or any(k != "padding_convention" for k in options):
            return None
        if not isinstance(query, WindowQuery) or query.k > self.window:
            return None
        signature = query_signature(query)
        plans = self._synth._plan_cache
        lifted = plans.get(signature)
        if lifted is None:
            lifted = lift_window_weights(query.weights, query.k, self.window)
            plans[signature] = lifted
        return lifted, self.padding.count_contribution(query)

    def __repr__(self) -> str:
        return (
            f"FixedWindowRelease(k={self.window}, t={self.t}, "
            f"n_pad={self.padding.n_pad})"
        )


class FixedWindowSynthesizer(WindowEngine):
    """Algorithm 1 — continual synthetic data for window histograms.

    The binary (``q = 2``) specialization of
    :class:`~repro.core.window_engine.WindowEngine`; see the engine for
    the streaming/churn/checkpoint machinery shared with the categorical
    synthesizer.

    Parameters
    ----------
    horizon:
        Known time horizon ``T``.
    window:
        Window width ``k`` (``1 <= k <= T``).
    rho:
        Total zCDP budget for the entire run; ``math.inf`` disables noise
        (oracle mode for tests/baselines).
    n_pad:
        Padding per bin.  ``None`` (default) chooses the Theorem 3.2 value
        for the given ``beta``.
    beta:
        Target failure probability used when auto-sizing ``n_pad``.
    on_negative:
        Fallback when a target count goes negative despite padding:
        ``"redistribute"`` (default; keeps consistency, counts the event)
        or ``"raise"``.
    sensitivity:
        Histogram L2 sensitivity used for noise calibration (1.0 matches
        the paper's accounting; see :mod:`repro.dp.mechanisms`).
    noise_method:
        ``"exact"`` or ``"vectorized"`` discrete Gaussian backend.
    """

    algorithm = "fixed_window"

    def __init__(
        self,
        horizon: int,
        window: int,
        rho: float,
        *,
        n_pad: int | None = None,
        beta: float = 0.05,
        on_negative: str = "redistribute",
        sensitivity: float = 1.0,
        seed: SeedLike = None,
        noise_method: str = "exact",
    ):
        super().__init__(
            horizon,
            window,
            rho,
            alphabet=2,
            n_pad=n_pad,
            beta=beta,
            on_negative=on_negative,
            sensitivity=sensitivity,
            seed=seed,
            noise_method=noise_method,
            engine="vectorized",
        )

    def _make_release(self) -> FixedWindowRelease:
        """Build the cached binary release view."""
        return FixedWindowRelease(self)

    def _validate_column_values(self, column: np.ndarray) -> None:
        """Binary panels accept literal 0/1 reports only."""
        validate_binary_column(column)

    @classmethod
    def from_config(cls, config: dict) -> "FixedWindowSynthesizer":
        """Rebuild a fresh synthesizer from :meth:`WindowEngine.config_dict` output.

        Parameters
        ----------
        config:
            A mapping produced by ``config_dict``.

        Returns
        -------
        FixedWindowSynthesizer
            An unfitted synthesizer with the same configuration, ready
            for :meth:`WindowEngine.load_state`.

        Raises
        ------
        repro.exceptions.SerializationError
            If required keys are missing or fail constructor validation.
        """
        try:
            return cls(
                int(config["horizon"]),
                int(config["window"]),
                float(config["rho"]),
                n_pad=int(config["n_pad"]),
                on_negative=str(config["on_negative"]),
                sensitivity=float(config["sensitivity"]),
                noise_method=str(config["noise_method"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid fixed-window config: {exc}") from exc
