"""Shared engine for Algorithm 1 over an arbitrary alphabet.

The paper's fixed-window solution "naturally extends to handle categorical
data with more than 2 categories" (§1); this module is that statement made
structural.  :class:`WindowEngine` owns the *entire* per-round machinery of
the fixed-window synthesizer for any alphabet size ``q >= 2``:

* streaming ingestion with base-``q`` window-code maintenance, the
  pre-window column buffer, and the dynamic-population protocol
  (``entrants=`` / ``exits=`` via :class:`~repro.core.population.PopulationLedger`,
  zero-fill convention);
* the two-phase update step — batched discrete-Gaussian noise for all
  ``q**k`` bins at once, consistency projection, and synthetic-record
  extension through the shared
  :class:`~repro.core.synthetic_store.WindowSyntheticStore`;
* zCDP accounting, padding (:class:`~repro.core.padding.PaddingSpec`), and
  the full checkpoint protocol (``config_dict`` / ``state_dict`` /
  ``load_state``) consumed by :mod:`repro.serve`.

:class:`~repro.core.fixed_window.FixedWindowSynthesizer` is the thin
``q = 2`` specialization: it pins the paper's fair ``+-1/2`` pair rounding
(:func:`~repro.core.consistency.apply_overlap_correction`) and stays
bit-exact — noise draws, record randomness, and zCDP ledger included —
with the pre-engine implementation.
:class:`~repro.core.categorical_window.CategoricalWindowSynthesizer` is the
generic-``q`` instantiation, with an ``engine`` knob selecting the
vectorized scatter-op path (default) or the per-group/per-record scalar
reference loops (``benchmarks/bench_categorical_extension.py`` pins the
speedup).
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from repro.core.consistency import (
    apply_group_correction,
    apply_overlap_correction,
    check_group_consistency,
    check_window_consistency,
)
from repro.core.padding import PaddingSpec
from repro.core.population import PopulationLedger
from repro.core.synthetic_store import WindowSyntheticStore
from repro.queries.plan import AnswerCache, workload_key
from repro.data.dataset import DynamicPanel
from repro.dp.accountant import ZCDPAccountant
from repro.dp.mechanisms import GaussianHistogramMechanism
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    NegativeCountError,
    NotFittedError,
    SerializationError,
)
from repro.rng import (
    SeedLike,
    as_generator,
    generator_state,
    restore_generator_state,
)
from repro.streams.layout import ArrayArena
from repro.streams.registry import resolve_engine
from repro.types import AttributeFrame

__all__ = ["WindowEngine", "WindowRelease"]


class WindowRelease:
    """Shared surface of a fixed-window release, for any alphabet.

    Holds everything both release views expose identically — the public
    metadata, the churn-aware population accounting, and the released
    histogram table.  The binary
    :class:`~repro.core.fixed_window.FixedWindowRelease` and categorical
    :class:`~repro.core.categorical_window.CategoricalWindowRelease`
    subclasses add their panel types and query-answering conventions.

    Parameters
    ----------
    synthesizer:
        The owning :class:`WindowEngine` subclass; the release is a live
        view of its state (one cached instance per synthesizer), not a
        frozen copy.
    """

    #: Release-protocol capability flag: ``answer`` accepts ``debias=``.
    #: The replication harness dispatches on this instead of isinstance.
    debias_aware = True

    def __init__(self, synthesizer: "WindowEngine"):
        self._synth = synthesizer

    # -- metadata ------------------------------------------------------

    @property
    def window(self) -> int:
        """Window width ``k``."""
        return self._synth.window

    @property
    def padding(self) -> PaddingSpec:
        """Public padding parameters (``n_pad`` per ``q**k`` bin)."""
        return self._synth.padding

    @property
    def n_original(self) -> int:
        """Real individuals ever admitted (equals ``n`` when static)."""
        if self._synth._n is None:
            raise NotFittedError("no data observed yet")
        return self._synth._ledger.n_ever

    def population(self, t: int) -> int:
        """Real individuals admitted by round ``t`` (the debias denominator).

        Parameters
        ----------
        t:
            1-indexed round.  Static populations return ``n`` for every
            round; under churn this is the ever-admitted count as of
            ``t`` — departed individuals keep counting under the
            zero-fill convention.
        """
        if self._synth._n is None:
            raise NotFittedError("no data observed yet")
        return self._synth._ledger.n_ever_at(t)

    def synthetic_population(self, t: int) -> int:
        """Synthetic records materialized by round ``t``.

        The denominator of biased (``debias=False``) answers; equals
        ``n_synthetic`` for static populations, and excludes records
        admitted for entrants after round ``t`` under churn.

        Parameters
        ----------
        t:
            1-indexed round.
        """
        ledger = self._synth._ledger
        return self.n_synthetic - (ledger.n_ever - ledger.n_ever_at(t))

    @property
    def n_synthetic(self) -> int:
        """Number of synthetic individuals ``n* = sum_s p_s^k``."""
        store = self._synth._store
        if store is None:
            raise NotFittedError("the first update step has not run yet")
        return store.m

    @property
    def t(self) -> int:
        """Rounds released so far."""
        return self._synth.t

    @property
    def negative_count_events(self) -> int:
        """How many groups needed the negative-count fallback."""
        return self._synth._negative_events

    # -- released data -------------------------------------------------

    def histogram(self, t: int) -> np.ndarray:
        """Target synthetic histogram ``p^t`` (length ``q**k``)."""
        try:
            return self._synth._histograms[t].copy()
        except KeyError:
            raise NotFittedError(f"no histogram released for t={t}") from None

    def released_times(self) -> list[int]:
        """Rounds with a released histogram, ascending."""
        return sorted(self._synth._histograms)

    # -- batched query answering ---------------------------------------

    @property
    def version(self) -> int:
        """Monotone state version: bumped by every mutation of the owner.

        ``observe()`` and ``load_state()`` each increment it, so equal
        versions guarantee equal answers — the key invariant behind the
        batched answer cache.
        """
        return self._synth._version

    def _compile_batch_query(self, query, options: dict):
        """Compile one query for the batched path (subclass hook).

        Returns ``(lifted_weights, padding_count)`` when the query is a
        histogram query this release can vectorize, or ``None`` to route
        it through the scalar :meth:`answer` per cell (record-level wide
        queries, foreign query types, non-default conventions).
        """
        return None

    def answer_batch(self, queries, times, debias: bool = True, **kwargs) -> np.ndarray:
        """Answer a whole window-query workload as one grid.

        Each histogram query is lifted to width ``k`` once (compiled
        plans are memoized per query signature) and answered over all
        requested rounds with the histogram fetch, padding lookup, and
        population denominators hoisted out of the per-cell loop; the
        count itself stays the scalar path's dot product per cell, so
        every entry is **bit-identical** with :meth:`answer`.  Cells
        with ``t < query.min_time()`` are ``NaN``; queries the planner
        cannot compile fall back to the scalar call per cell.  Results
        are memoized per release version.
        """
        queries = list(queries)
        times = [int(t) for t in times]
        key = workload_key(queries, times, debias=bool(debias), **kwargs)
        cache = self._synth._answer_cache
        version = self.version
        if key is not None:
            hit = cache.get(version, key)
            if hit is not None:
                return hit
        out = np.full((len(queries), len(times)), np.nan, dtype=np.float64)
        histograms: dict[int, np.ndarray] = {}
        populations: dict[int, int] = {}
        synthetic: dict[int, int] = {}
        for qi, query in enumerate(queries):
            floor = query.min_time()
            cells = [i for i, t in enumerate(times) if t >= floor]
            if not cells:
                continue
            compiled = self._compile_batch_query(query, kwargs)
            if compiled is None:
                for i in cells:
                    out[qi, i] = self.answer(query, times[i], debias=debias, **kwargs)
                continue
            lifted, padding_count = compiled
            counts = np.empty(len(cells), dtype=np.float64)
            for j, i in enumerate(cells):
                t = times[i]
                row = histograms.get(t)
                if row is None:
                    row = self._synth._histograms.get(t)
                    if row is None:
                        raise NotFittedError(f"no histogram released for t={t}")
                    histograms[t] = row
                # The same dot product the scalar path computes — BLAS
                # gemv is *not* bitwise equal to per-row ddot, so the
                # batch speedup comes from hoisting everything else.
                counts[j] = float(lifted @ row)
            denominators = np.empty(len(cells), dtype=np.float64)
            if not debias:
                for j, i in enumerate(cells):
                    t = times[i]
                    if t not in synthetic:
                        synthetic[t] = self.synthetic_population(t)
                    denominators[j] = synthetic[t]
                out[qi, cells] = counts / denominators
                continue
            for j, i in enumerate(cells):
                t = times[i]
                if t not in populations:
                    populations[t] = self.population(t)
                denominators[j] = populations[t]
            if denominators.min() <= 0:
                raise ConfigurationError(
                    f"n_original must be positive, got {int(denominators.min())}"
                )
            out[qi, cells] = (counts - padding_count) / denominators
        if key is not None:
            cache.put(version, key, out)
        return out


class WindowEngine:
    """Alphabet-generic core of the fixed-window synthesizer.

    Subclasses fix the user-facing surface — the binary
    :class:`~repro.core.fixed_window.FixedWindowSynthesizer` and the
    generic-``q``
    :class:`~repro.core.categorical_window.CategoricalWindowSynthesizer` —
    by setting :attr:`algorithm`, building their release view, and
    validating their column/panel types; everything else (streaming,
    churn, noise, projection, store, accounting, checkpointing) lives
    here once.

    Parameters
    ----------
    horizon:
        Known time horizon ``T``.
    window:
        Window width ``k`` (``1 <= k <= T``).
    rho:
        Total zCDP budget for the entire run; ``math.inf`` disables noise
        (oracle mode for tests/baselines).
    alphabet:
        Number of categories ``q >= 2`` (2 is the paper's binary panel).
    n_pad:
        Padding per bin.  ``None`` (default) chooses the Theorem 3.2
        value for the given ``beta`` (union bound over ``q**k`` bins).
    beta:
        Target failure probability used when auto-sizing ``n_pad``.
    on_negative:
        Fallback when a target count goes negative despite padding:
        ``"redistribute"`` (default; keeps consistency, counts the event)
        or ``"raise"``.
    sensitivity:
        Histogram L2 sensitivity used for noise calibration (1.0 matches
        the paper's accounting; see :mod:`repro.dp.mechanisms`).
    seed:
        Seed or generator for all randomness (noise and records).
    noise_method:
        ``"exact"`` or ``"vectorized"`` discrete Gaussian backend.
    engine:
        Projection/extension engine for alphabets above 2:
        ``"vectorized"`` (batched scatter ops, default) or ``"scalar"``
        (per-group / per-record reference loops); ``None`` consults
        ``$REPRO_ENGINE``.  The binary specialization always runs its
        bit-exact paired path regardless of this knob.
    """

    #: Tag stored in checkpoint configs; subclasses override.
    algorithm = "window"

    #: Bin-count guard (``None`` disables); the categorical subclass caps
    #: ``q**k`` so a typo'd alphabet cannot materialize 2**40 bins.
    _max_bins: int | None = None

    def __init__(
        self,
        horizon: int,
        window: int,
        rho: float,
        *,
        alphabet: int = 2,
        n_pad: int | None = None,
        beta: float = 0.05,
        on_negative: str = "redistribute",
        sensitivity: float = 1.0,
        seed: SeedLike = None,
        noise_method: str = "exact",
        engine: str | None = "vectorized",
    ):
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if not 1 <= window <= horizon:
            raise ConfigurationError(
                f"window must lie in [1, horizon={horizon}], got {window}"
            )
        if alphabet < 2:
            raise ConfigurationError(f"alphabet must be at least 2, got {alphabet}")
        if self._max_bins is not None and alphabet**window > self._max_bins:
            raise ConfigurationError(
                f"alphabet**window = {alphabet**window} bins exceeds the "
                f"{self._max_bins} limit; reduce the window or the alphabet"
            )
        if not rho > 0:
            raise ConfigurationError(f"rho must be positive (or math.inf), got {rho}")
        if on_negative not in ("redistribute", "raise"):
            raise ConfigurationError(
                f"on_negative must be 'redistribute' or 'raise', got {on_negative!r}"
            )
        self.horizon = int(horizon)
        self.window = int(window)
        self.alphabet = int(alphabet)
        self.rho = float(rho)
        self.on_negative = on_negative
        self.sensitivity = float(sensitivity)
        self.noise_method = noise_method
        self.engine = resolve_engine(engine)
        self._generator = as_generator(seed)

        self.update_steps = self.horizon - self.window + 1
        if math.isinf(self.rho):
            sigma_sq = Fraction(0)
            self.accountant = None
        else:
            sigma_sq = Fraction(self.update_steps) / (
                2 * Fraction(self.rho).limit_denominator(10**12)
            )
            self.accountant = ZCDPAccountant(self.rho)
        self.sigma_sq = sigma_sq
        self._mechanism = GaussianHistogramMechanism(
            n_bins=self.alphabet**self.window,
            sigma_sq=sigma_sq,
            sensitivity=sensitivity,
            seed=self._generator,
            method=noise_method,
        )

        if n_pad is None:
            if math.isinf(self.rho):
                n_pad = 0
            else:
                n_pad = PaddingSpec.auto(
                    self.horizon, self.window, self.rho, beta, alphabet=self.alphabet
                ).n_pad
        self.padding = PaddingSpec(
            window=self.window,
            n_pad=int(n_pad),
            horizon=self.horizon,
            alphabet=self.alphabet,
        )

        self._t = 0
        self._n: int | None = None  # initial (round-1) population
        self._ledger: PopulationLedger | None = None
        self._window_codes: np.ndarray | None = None  # original-data codes
        self._recent_columns: list[np.ndarray] = []  # first k-1 columns buffer
        self._store: WindowSyntheticStore | None = None
        # All released histograms live in one preallocated column-major
        # block (one column per update step, written in release order);
        # the dict maps each released round to its column view.
        self._layout = ArrayArena(
            [
                (
                    "histograms",
                    (self.alphabet**self.window, self.update_steps),
                    np.int64,
                    "F",
                )
            ]
        )
        self._hist_block = self._layout["histograms"]
        self._histograms: dict[int, np.ndarray] = {}
        self._negative_events = 0
        self._release_view = self._make_release()
        self._version = 0
        self._answer_cache = AnswerCache()
        self._plan_cache: dict = {}

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def _make_release(self):
        """Build the algorithm's release view (subclass hook)."""
        raise NotImplementedError

    def _validate_column_values(self, column: np.ndarray) -> None:
        """Reject out-of-alphabet report values (subclass hook)."""
        if column.size and (column.min() < 0 or column.max() >= self.alphabet):
            raise DataValidationError(
                f"column entries must lie in [0, {self.alphabet})"
            )

    def _check_dataset(self, dataset) -> None:
        """Reject panels this synthesizer cannot consume (subclass hook)."""
        if dataset.horizon != self.horizon:
            raise DataValidationError(
                f"dataset horizon {dataset.horizon} != synthesizer horizon {self.horizon}"
            )

    # ------------------------------------------------------------------
    # Streaming API
    # ------------------------------------------------------------------

    @property
    def t(self) -> int:
        """Rounds observed so far."""
        return self._t

    @property
    def release(self):
        """View of everything released so far (one cached instance)."""
        return self._release_view

    def padding_panel(self):
        """The materialized de Bruijn padding population (public).

        Returns the :attr:`padding` spec's record panel — binary
        (:class:`~repro.data.dataset.LongitudinalDataset`) or
        categorical, matching the synthesizer's alphabet.
        """
        return self.padding.panel

    def observe(self, data, *, entrants: int = 0, exits=None):
        """Consume the round-``t`` report vector ``D_t`` and update.

        Before round ``k`` the reports are only buffered (the first release
        happens once a full window exists).  Returns the release view for
        convenience.

        Parameters
        ----------
        data:
            The round's reports over ``{0, ..., q-1}``, one entry per
            *currently active* individual in ascending id (admission)
            order; this round's entrants report in the final
            ``entrants`` entries.  A 1-D vector, or a width-1
            :class:`~repro.types.AttributeFrame` (this engine synthesizes
            a single attribute; see
            :class:`~repro.core.multi_attribute.MultiAttributeSynthesizer`
            for ``d >= 2``).
        entrants:
            Number of individuals entering this round.  Under the
            zero-fill convention an entrant's pre-entry history is the
            all-zero report, so their window code starts from the
            all-zero pattern.
        exits:
            Ids of previously active individuals absent from this round
            on (permanent; their window codes decay through structural
            zeros).  Retiring a departed or unknown id raises.

        Raises
        ------
        repro.exceptions.DataValidationError
            On out-of-alphabet input, a column length that disagrees
            with the declared churn, rounds past the horizon, or invalid
            churn declarations.
        """
        if isinstance(data, AttributeFrame):
            data = data.sole()
        column = np.asarray(data)
        if column.ndim != 1:
            raise DataValidationError(f"column must be 1-D, got shape {column.shape}")
        self._validate_column_values(column)
        entrants = int(entrants)
        if entrants < 0:
            raise DataValidationError(f"entrants must be non-negative, got {entrants}")
        exit_ids = np.asarray([] if exits is None else exits, dtype=np.int64)
        if self._n is None:
            if exit_ids.size:
                raise DataValidationError(
                    "round 1 admits the initial population; nobody can exit yet"
                )
            if entrants > column.shape[0]:
                raise DataValidationError(
                    f"round 1 declares {entrants} entrants but the column has "
                    f"only {column.shape[0]} reports"
                )
            self._n = int(column.shape[0])
            self._ledger = PopulationLedger()
            self._ledger.admit(self._n, 1)
            exit_count = 0
        else:
            expected = self._ledger.n_active - exit_ids.size + entrants
            if column.shape[0] != expected:
                raise DataValidationError(
                    f"column has {column.shape[0]} entries, expected {expected} "
                    f"(n_active={self._ledger.n_active}, {exit_ids.size} exits, "
                    f"{entrants} entrants)"
                )
            if self._t >= self.horizon:
                raise DataValidationError(f"horizon {self.horizon} already exhausted")
            self._ledger.retire(exit_ids, self._t + 1)
            self._ledger.admit(entrants, self._t + 1)
            exit_count = int(exit_ids.size)
            if entrants:
                # Zero-fill the entrants' pre-entry history: all-zero
                # window codes and all-zero buffered reports.
                if self._window_codes is not None:
                    self._window_codes = np.concatenate(
                        [self._window_codes, np.zeros(entrants, dtype=np.int64)]
                    )
                if self._recent_columns:
                    self._recent_columns = [
                        np.pad(past, (0, entrants)) for past in self._recent_columns
                    ]
        # Rounds past the horizon were rejected above (round 1 cannot
        # exceed it: the constructor requires horizon >= window >= 1).
        self._t += 1
        self._version += 1
        column = column.astype(np.int64)
        full_column = self._ledger.scatter_column(column)

        if self._t < self.window:
            self._recent_columns.append(full_column)
            return self.release

        # Maintain each individual's current base-q window code over the
        # ever-admitted population (departed ids decay through zeros).
        q = self.alphabet
        n_ever = self._ledger.n_ever
        if self._t == self.window:
            codes = np.zeros(n_ever, dtype=np.int64)
            for past in self._recent_columns:
                codes = codes * q + past
            codes = codes * q + full_column
            self._recent_columns = []
        else:
            codes = (self._window_codes % q ** (self.window - 1)) * q + full_column
        self._window_codes = codes

        true_counts = np.bincount(codes, minlength=q**self.window).astype(np.int64)
        self._update_step(true_counts, entrants=entrants, exit_count=exit_count)
        return self.release

    def run(self, dataset):
        """Batch driver: feed every column of ``dataset`` and return the release.

        Parameters
        ----------
        dataset:
            A panel matching the synthesizer's alphabet and horizon — a
            static binary/categorical panel, or a
            :class:`~repro.data.dataset.DynamicPanel` whose per-round
            entry/exit events are replayed through
            :meth:`observe`'s churn parameters.
        """
        self._check_dataset(dataset)
        if self._t:
            raise ConfigurationError("run() requires a fresh synthesizer")
        if isinstance(dataset, DynamicPanel):
            for column, entrants, round_exits in dataset.rounds():
                self.observe(column, entrants=entrants, exits=round_exits)
        else:
            for column in dataset.columns():
                self.observe(column)
        return self.release

    def lifespans(self) -> np.ndarray:
        """Per-individual ``(entry_round, exit_round)`` pairs observed so far.

        Returns
        -------
        numpy.ndarray
            Shape ``(n_ever, 2)``; ``exit_round`` 0 marks a still-active
            individual.

        Raises
        ------
        repro.exceptions.NotFittedError
            Before any data has been observed.
        """
        if self._ledger is None:
            raise NotFittedError("no data observed yet")
        return self._ledger.lifespans()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def config_dict(self) -> dict:
        """The constructor arguments needed to rebuild this synthesizer.

        Returns
        -------
        dict
            JSON-safe mapping with the ``algorithm`` tag plus the
            horizon, window width, budget, resolved padding,
            negative-count policy, sensitivity, and noise backend.
            Consumed by ``from_config``; the seed is deliberately
            absent.  Subclasses append their own knobs (the categorical
            synthesizer adds ``alphabet`` and ``engine``).
        """
        return {
            "algorithm": self.algorithm,
            "horizon": self.horizon,
            "window": self.window,
            "rho": self.rho,
            "n_pad": self.padding.n_pad,
            "on_negative": self.on_negative,
            "sensitivity": self.sensitivity,
            "noise_method": self.noise_method,
        }

    def state_dict(self, *, copy: bool = True) -> dict:
        """Snapshot the full mid-stream state.

        Parameters
        ----------
        copy:
            Copy the state arrays into the snapshot (default).
            ``copy=False`` returns live views of the engine's buffers —
            the streaming checkpoint writer uses this to spool state into
            the bundle without a second in-RAM copy; such a snapshot must
            be consumed before the engine advances.

        Returns
        -------
        dict
            The clock, population size, per-individual window codes, the
            pre-window column buffer, every released histogram, the
            negative-count event counter, the synthetic store, the zCDP
            ledger, and the shared generator's bit state (the histogram
            mechanism and the store draw from the same generator, so one
            snapshot covers all noise and record randomness).  Array
            leaves stay NumPy arrays for the :mod:`repro.serve` bundle
            layer.
        """
        released = sorted(self._histograms)
        state = {
            "t": self._t,
            "n": self._n,
            "negative_events": self._negative_events,
            "generator": generator_state(self._generator),
            "accountant": None if self.accountant is None else self.accountant.to_dict(),
            "released_times": released,
            "recent_count": len(self._recent_columns),
        }
        if self._ledger is not None:
            state["ledger"] = self._ledger.state_dict(copy=copy)
        if self._window_codes is not None:
            state["window_codes"] = (
                self._window_codes.copy() if copy else self._window_codes
            )
        for index, column in enumerate(self._recent_columns):
            state[f"recent_{index}"] = column.copy() if copy else column
        if released:
            # Releases fill block columns 0..len-1 in round order, so the
            # transposed prefix *is* the stacked released-histogram table.
            block = self._hist_block[:, : len(released)].T
            state["histograms"] = np.ascontiguousarray(block) if copy else block
        if self._store is not None:
            state["store"] = self._store.state_dict(copy=copy)
        return state

    def load_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict` in place.

        Must be called on a *fresh* synthesizer built with the same
        configuration (use ``from_config``).  After loading, every
        subsequent :meth:`observe` is byte-identical to the
        uninterrupted run, noise included.

        Parameters
        ----------
        state:
            A snapshot produced by :meth:`state_dict`.

        Raises
        ------
        repro.exceptions.SerializationError
            If the snapshot is structurally invalid or disagrees with
            this synthesizer's configuration.
        """
        if self._t:
            raise SerializationError("load_state() requires a fresh synthesizer")
        try:
            t = int(state["t"])
            n = state["n"]
            released = [int(x) for x in state["released_times"]]
            recent_count = int(state["recent_count"])
            self._negative_events = int(state["negative_events"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                f"invalid {self.algorithm} state: {exc}"
            ) from exc
        if not 0 <= t <= self.horizon:
            raise SerializationError(f"clock {t} outside [0, horizon={self.horizon}]")
        if (n is None) != (t == 0):
            raise SerializationError(f"population {n!r} inconsistent with clock {t}")
        # Structural invariants of the streaming loop: before round k the
        # columns are buffered (and only then); from round k on the
        # per-individual window codes and the store must exist.
        expected_recent = t if t < self.window else 0
        if recent_count != expected_recent:
            raise SerializationError(
                f"snapshot buffers {recent_count} pre-window columns at clock "
                f"{t} (window {self.window}); expected {expected_recent}"
            )
        if t >= self.window and "window_codes" not in state:
            raise SerializationError(
                f"snapshot at clock {t} is missing window codes "
                f"(required from round {self.window} on)"
            )
        if t >= self.window and "store" not in state:
            raise SerializationError(
                f"snapshot at clock {t} is missing the synthetic store "
                f"(required from round {self.window} on)"
            )
        restore_generator_state(self._generator, state["generator"])
        if state.get("accountant") is None:
            if self.accountant is not None:
                raise SerializationError("snapshot has no ledger but rho is finite")
        else:
            if self.accountant is None:
                raise SerializationError("snapshot has a ledger but rho is infinite")
            self.accountant = ZCDPAccountant.from_dict(state["accountant"])
        self._t = t
        self._n = None if n is None else int(n)
        if self._n is not None:
            self._ledger = PopulationLedger.from_state(state.get("ledger", {}))
            if self._ledger.n_ever < self._n:
                raise SerializationError(
                    f"lifespan table covers {self._ledger.n_ever} individuals "
                    f"but the initial population was {self._n}"
                )
        try:
            self._recent_columns = [
                np.array(state[f"recent_{index}"], dtype=np.int64)
                for index in range(recent_count)
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                f"invalid {self.algorithm} state: {exc}"
            ) from exc
        if "window_codes" in state:
            codes = np.array(state["window_codes"], dtype=np.int64)
            expected_n = None if self._n is None else self._ledger.n_ever
            if expected_n is None or codes.shape != (expected_n,):
                raise SerializationError(
                    f"window codes have shape {codes.shape}, expected ({expected_n},)"
                )
            self._window_codes = codes
        self._histograms = {}
        if released:
            # One release per round from round k on — anything else cannot
            # have come from this engine and would scramble the block.
            if len(released) > self.update_steps or released != list(
                range(self.window, self.window + len(released))
            ):
                raise SerializationError(
                    f"released times {released} are not the contiguous run "
                    f"{self.window}..{self.window + len(released) - 1}"
                )
            try:
                stacked = np.array(state["histograms"], dtype=np.int64)
            except (KeyError, TypeError, ValueError) as exc:
                raise SerializationError(
                f"invalid {self.algorithm} state: {exc}"
            ) from exc
            n_bins = self.alphabet**self.window
            if stacked.shape != (len(released), n_bins):
                raise SerializationError(
                    f"histogram block has shape {stacked.shape}, expected "
                    f"{(len(released), n_bins)}"
                )
            self._hist_block[:, : len(released)] = stacked.T
            self._histograms = {
                round_t: self._hist_block[:, index]
                for index, round_t in enumerate(released)
            }
        if "store" in state:
            self._store = WindowSyntheticStore.from_state(
                state["store"], self._generator, assign=self._store_assign()
            )
            if self._store.window != self.window or self._store.horizon != self.horizon:
                raise SerializationError(
                    "store dimensions disagree with the synthesizer configuration"
                )
            if self._store.alphabet != self.alphabet:
                raise SerializationError(
                    f"store alphabet {self._store.alphabet} disagrees with the "
                    f"synthesizer alphabet {self.alphabet}"
                )
        self._version += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _store_assign(self) -> str:
        """Record-assignment mode for the synthetic store.

        The binary specialization always uses the vectorized argsort
        path (its bit-exactness contract); for ``q > 2`` the ``engine``
        knob decides.
        """
        return "vectorized" if self.alphabet == 2 else self.engine

    def _project(
        self, previous: np.ndarray, noisy: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Consistency projection, dispatched on the alphabet.

        ``q = 2`` runs the paper's fair ``+-1/2`` pair correction —
        unchanged from the pre-engine binary implementation, generator
        stream included; ``q > 2`` runs the grouped base-``q`` correction
        in the configured engine's flavor.
        """
        if self.alphabet == 2:
            new_counts, events = apply_overlap_correction(
                previous, noisy, self._generator, on_negative=self.on_negative
            )
            assert check_window_consistency(previous, new_counts)
            return new_counts, events
        new_counts, events = apply_group_correction(
            previous,
            noisy,
            self.alphabet,
            self._generator,
            on_negative=self.on_negative,
            method=self.engine,
        )
        assert check_group_consistency(previous, new_counts, self.alphabet)
        return new_counts, events

    def _update_step(
        self, true_counts: np.ndarray, entrants: int = 0, exit_count: int = 0
    ) -> None:
        """One Algorithm-1 update: noise, project, extend."""
        if self.accountant is not None:
            self.accountant.charge(
                self._mechanism.rho_per_release, label=f"window histogram t={self._t}"
            )
        noisy = self._mechanism.release(true_counts + self.padding.n_pad)

        if self._store is None:
            # t = k: materialize any dataset matching the noisy histogram.
            initial = noisy
            negative = initial < 0
            if negative.any():
                if self.on_negative == "raise":
                    bad = int(np.flatnonzero(negative)[0])
                    raise NegativeCountError(
                        f"initial noisy count for bin {bad} is {initial[bad]}; "
                        "increase n_pad or use on_negative='redistribute'"
                    )
                self._negative_events += int(negative.sum())
                initial = np.clip(initial, 0, None)
            self._store = WindowSyntheticStore(
                initial,
                self.window,
                self.horizon,
                self._generator,
                alphabet=self.alphabet,
                assign=self._store_assign(),
            )
            departed = self._ledger.n_ever - self._ledger.n_active
            if departed:
                # Pre-window departures: mirror them in the synthetic
                # population's active bookkeeping (capped by the noisy
                # synthetic population size).
                self._store.retire(min(departed, self._store.n_active))
            self._record_histogram(initial.astype(np.int64))
            return

        previous = self._histograms[self._t - 1]
        if entrants:
            # Zero-fill: this round's entrants were retroactively present
            # at t-1 with the all-zero window code, so the previous
            # histogram is credited at bin 0 before the consistency
            # projection, and the store admits matching all-zero records.
            previous = previous.copy()
            previous[0] += entrants
            self._store.admit(entrants)
        if exit_count:
            self._store.retire(min(exit_count, self._store.n_active))
        new_counts, events = self._project(previous, noisy)
        self._negative_events += events
        self._store.extend(new_counts)
        self._record_histogram(new_counts)

    def _record_histogram(self, counts: np.ndarray) -> None:
        """File round ``t``'s histogram into its block column."""
        column = self._hist_block[:, self._t - self.window]
        column[:] = counts
        self._histograms[self._t] = column
