"""Privacy-budget allocation across the per-threshold stream counters.

Algorithm 2 runs one stream counter per Hamming-weight threshold
``b = 1, ..., T`` and requires ``sum_b rho_b = rho``.  Two splits are
provided:

* :func:`uniform_split` — ``rho_b = rho / T``;
* :func:`corollary_b1_split` — ``rho_b`` proportional to
  ``max(ceil(log2(T - b + 1)), 1)^3``, which equalizes the worst-case
  tree-counter bounds across thresholds (Corollary B.1).  Counters with
  later thresholds see shorter effective streams (the ``b``-th stream only
  carries information from round ``b`` on), so they need less budget.

The ``abl-budget`` benchmark compares the two splits empirically.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.analysis.theory import corollary_b1_weights_unnormalized
from repro.exceptions import ConfigurationError

__all__ = ["uniform_split", "corollary_b1_split", "allocate_budget"]


def uniform_split(horizon: int, rho: float) -> np.ndarray:
    """``rho_b = rho / T`` for every threshold, indexed by ``b - 1``."""
    _check(horizon, rho)
    if math.isinf(rho):
        return np.full(horizon, math.inf)
    return np.full(horizon, rho / horizon)


def corollary_b1_split(horizon: int, rho: float) -> np.ndarray:
    """Corollary B.1 allocation, indexed by ``b - 1`` for ``b = 1..T``."""
    _check(horizon, rho)
    if math.isinf(rho):
        return np.full(horizon, math.inf)
    weights = np.asarray(corollary_b1_weights_unnormalized(horizon), dtype=np.float64)
    return rho * weights / weights.sum()


def allocate_budget(horizon: int, rho: float, scheme) -> np.ndarray:
    """Resolve a budget scheme into a per-threshold ``rho_b`` vector.

    ``scheme`` may be ``"uniform"``, ``"corollary_b1"``, or an explicit
    sequence of ``T`` positive values summing to ``rho`` (tolerance 1e-9
    relative).
    """
    if isinstance(scheme, str):
        if scheme == "uniform":
            return uniform_split(horizon, rho)
        if scheme == "corollary_b1":
            return corollary_b1_split(horizon, rho)
        raise ConfigurationError(
            f"unknown budget scheme {scheme!r}; use 'uniform', 'corollary_b1', "
            "or an explicit sequence"
        )
    return _explicit(horizon, rho, scheme)


def _explicit(horizon: int, rho: float, values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.shape != (horizon,):
        raise ConfigurationError(
            f"explicit budget must have length T={horizon}, got shape {arr.shape}"
        )
    if (arr <= 0).any():
        raise ConfigurationError("every rho_b must be positive")
    if not math.isinf(rho) and not math.isclose(arr.sum(), rho, rel_tol=1e-9):
        raise ConfigurationError(
            f"budget values sum to {arr.sum():.6g}, expected rho={rho:.6g}"
        )
    return arr


def _check(horizon: int, rho: float) -> None:
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    if not rho > 0:
        raise ConfigurationError(f"rho must be positive, got {rho}")
