"""Cross-counter monotonization (Algorithm 2, step
``S^_b^t = min(max(S~_b^t, S^_b^{t-1}), S^_{b-1}^{t-1})``).

True threshold counts satisfy two monotonicity constraints that noisy
counters can violate:

1. ``S_b^t >= S_b^{t-1}`` — Hamming weights only grow over time;
2. ``S_b^t <= S_{b-1}^{t-1}`` — a weight can grow by at most 1 per round,
   so everyone counted in ``S_b^t`` already had weight ``>= b-1``.

Clamping the noisy value into ``[S^_b^{t-1}, S^_{b-1}^{t-1}]`` restores both
and — by Lemma 4.2 — never increases the worst-case error.  Both properties
are verified by property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["monotonize_row", "monotonize_rows", "is_monotone_table"]


def monotonize_row(noisy: np.ndarray, previous: np.ndarray, population: int) -> np.ndarray:
    """Monotonize one round of threshold estimates.

    Parameters
    ----------
    noisy:
        ``S~_b^t`` for ``b = 1, ..., t`` (length ``t`` integer vector).
    previous:
        The *monotonized* previous row ``S^_b^{t-1}`` for ``b = 0, ..., t``
        (length ``t + 1``; entry 0 is the constant population count, entry
        ``t`` — a threshold that only activates this round — must be 0).
    population:
        Total number of (synthetic) individuals ``m``; ``previous[0]`` must
        equal it.

    Returns
    -------
    The monotonized row ``S^_b^t`` for ``b = 1, ..., t`` (length ``t``).
    """
    noisy = np.asarray(noisy, dtype=np.int64)
    if noisy.ndim != 1:
        raise ConfigurationError(f"noisy row must be 1-D, got shape {noisy.shape}")
    previous = np.asarray(previous, dtype=np.int64)
    if previous.shape != (noisy.shape[0] + 1,):
        raise ConfigurationError(
            f"previous row must have length t+1={noisy.shape[0] + 1}, "
            f"got {previous.shape}"
        )
    return monotonize_rows(noisy[None, :], previous[None, :], population)[0]


def monotonize_rows(
    noisy: np.ndarray, previous: np.ndarray, population: int
) -> np.ndarray:
    """Batched monotonization: one round of estimates for ``R`` replicas.

    Vectorized form of :func:`monotonize_row` over a leading rep axis —
    the per-round step of the batched replication engine, which clamps all
    ``R`` repetitions' rounds with two array ops instead of ``R`` Python
    calls.

    Parameters
    ----------
    noisy:
        ``S~_b^t`` for ``b = 1, ..., t``, shape ``(R, t)`` integers.
    previous:
        Monotonized previous rows ``S^_b^{t-1}`` for ``b = 0, ..., t``,
        shape ``(R, t + 1)``; column 0 is the constant population count.
    population:
        Total number of (synthetic) individuals ``m``.

    Returns
    -------
    The monotonized rows ``S^_b^t`` for ``b = 1, ..., t``, shape ``(R, t)``.
    """
    noisy = np.asarray(noisy, dtype=np.int64)
    previous = np.asarray(previous, dtype=np.int64)
    if noisy.ndim != 2:
        raise ConfigurationError(f"noisy rows must be 2-D, got shape {noisy.shape}")
    n_reps, t = noisy.shape
    if previous.shape != (n_reps, t + 1):
        raise ConfigurationError(
            f"previous rows must have shape ({n_reps}, {t + 1}), got {previous.shape}"
        )
    if (previous[:, 0] != population).any():
        raise ConfigurationError(
            f"previous[0] must equal the population {population}, "
            f"got {previous[previous[:, 0] != population, 0][0]}"
        )
    lower = previous[:, 1 : t + 1]  # S^_b^{t-1}
    upper = previous[:, 0:t]  # S^_{b-1}^{t-1}
    if (lower > upper).any():
        raise ConfigurationError("previous row is not non-increasing in b")
    return np.minimum(np.maximum(noisy, lower), upper)


def is_monotone_table(table: np.ndarray, population) -> bool:
    """Check both monotonicity constraints on a full ``(T+1) x (B+1)`` table.

    ``table[t, b]`` holds ``S^_b^t`` with row 0 the initial state
    ``(m, 0, ..., 0)``.  Verifies: non-increasing along ``b`` within each
    row, non-decreasing along ``t`` within each column, and the cross
    constraint ``table[t, b] <= table[t-1, b-1]``.

    ``population`` may be a scalar (the static model) or a per-round
    vector of ever-admitted population sizes (dynamic populations, see
    :mod:`repro.core.population`).  In the dynamic case the vector must
    be non-decreasing and the ``b = 1`` cross constraint is checked
    against the *current* round's population instead of the previous
    one — under the zero-fill convention this round's entrants are
    retroactively weight-0 members of the previous round, so
    ``S^_1^t <= S^_0^t`` is the binding ceiling (and is already implied
    by the within-row check).
    """
    table = np.asarray(table)
    if table.ndim != 2:
        raise ConfigurationError(f"table must be 2-D, got shape {table.shape}")
    population = np.asarray(population)
    if population.ndim == 0:
        if (table[:, 0] != population).any():
            return False
        cross_from = 1
    else:
        if population.shape != (table.shape[0],):
            raise ConfigurationError(
                f"per-round population must have length {table.shape[0]}, "
                f"got shape {population.shape}"
            )
        if (table[:, 0] != population).any() or (np.diff(population) < 0).any():
            return False
        cross_from = 2  # b = 1 is bounded by the current round's population
    if (np.diff(table, axis=1) > 0).any():  # non-increasing in b
        return False
    if (np.diff(table, axis=0) < 0).any():  # non-decreasing in t
        return False
    cross = table[1:, cross_from:] > table[:-1, cross_from - 1 : -1]
    return not cross.any()
