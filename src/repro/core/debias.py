"""Debiasing post-processing for fixed-window releases (§3.2).

Padding introduces a *publicly known* bias: each bin count carries an extra
``n_pad`` fake people, and the synthetic population is ``n* = sum_s p_s``
rather than ``n``.  Since ``n_pad`` and ``k`` are public, an analyst can
subtract the padding contribution from any window query's count answer and
renormalize by ``n`` — recovering an unbiased estimate with error bounded by
Theorem 3.2 over ``n`` (Figures 4-7 show the difference this makes).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["lift_window_weights", "debias_count_answer"]


def lift_window_weights(weights: np.ndarray, from_k: int, to_k: int) -> np.ndarray:
    """Lift a width-``k'`` weight vector to width ``k >= k'``.

    The width-``k'`` histogram is the marginal of the width-``k`` histogram
    over the most recent ``k'`` positions, so a width-``k'`` linear query
    is the width-``k`` linear query with weights
    ``w_k[s] = w_{k'}[s mod 2**k']``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (1 << from_k,):
        raise ConfigurationError(
            f"weights must have length 2**{from_k}, got shape {weights.shape}"
        )
    if to_k < from_k:
        raise ConfigurationError(f"cannot lift width {from_k} down to {to_k}")
    codes = np.arange(1 << to_k)
    return weights[codes & ((1 << from_k) - 1)]


def debias_count_answer(
    count_answer: float,
    padding_count: float,
    n_original: int,
) -> float:
    """Debiased fraction: ``(count - padding_count) / n`` (§3.2).

    ``count_answer`` is the query's answer on the synthetic data in *count*
    scale (``sum_s w_s p_s``); ``padding_count`` is the same query's exact
    answer on the padding population.
    """
    if n_original <= 0:
        raise ConfigurationError(f"n_original must be positive, got {n_original}")
    return (count_answer - padding_count) / n_original
