"""Batched replication of Algorithm 2: all ``R`` repetitions as one state machine.

Every figure in the paper repeats a synthesizer ``R = 1000`` times on the
*same* panel and plots the answer distribution.  Re-running
:class:`~repro.core.cumulative.CumulativeSynthesizer` in a Python loop
repeats three kinds of work that are identical across repetitions:

1. the stream increments ``z_b^t`` (data-dependent only — computed once
   here);
2. the per-round Python dispatch of stage 1 (the counter bank) and stage 2
   (monotonization) — batched here along a rep axis via
   :class:`~repro.streams.bank.CounterBank` with ``n_reps=R`` and
   :func:`~repro.core.monotonize.monotonize_rows`;
3. the synthetic record draws — skipped entirely, because
   :class:`HammingAtLeast` / :class:`HammingExactly` answers read off the
   threshold table ``S^`` alone (the synthetic census equals the table
   exactly, Theorem 4.4), and replication experiments never request the
   records.

The result is a ``(R, T+1, T+1)`` stack of monotonized threshold tables
from which :meth:`ReplicatedCumulativeRelease.answer_grid` evaluates the
whole ``(rep, query, time)`` answer cube with array indexing.

Equivalence contract (pinned by ``tests/core/test_replicated.py`` and the
``benchmarks/bench_replication.py`` acceptance test): in noiseless mode
(``rho = inf``) every replica's table is bit-exact with a serial
:class:`~repro.core.cumulative.CumulativeSynthesizer` run, and the zCDP
ledger charged per replica is identical to the serial ledger entry for
entry; with noise, the per-rep answer distributions are the same (the
noise is drawn from the same per-threshold mechanisms, batched).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.budget import allocate_budget
from repro.core.cumulative import counter_charge_label, stream_increments
from repro.core.monotonize import is_monotone_table, monotonize_rows
from repro.data.dataset import LongitudinalDataset
from repro.dp.accountant import ZCDPAccountant
from repro.exceptions import ConfigurationError, DataValidationError
from repro.queries.cumulative import HammingAtLeast, HammingExactly
from repro.queries.plan import compile_cumulative
from repro.rng import SeedLike, as_generator
from repro.streams.registry import available_counters, make_bank

__all__ = ["ReplicatedCumulativeRelease", "replicate_cumulative"]


class ReplicatedCumulativeRelease:
    """Threshold tables and answers of ``R`` batched Algorithm-2 runs.

    Attributes
    ----------
    tables:
        Monotonized threshold counts ``S^_b^t`` for every replica, shape
        ``(R, T+1, T+1)`` (``tables[r, t, b]``; row 0 is the initial state
        ``(n, 0, ..., 0)``).
    accountant:
        The zCDP ledger charged by *each* replica — the ``R`` runs are
        independent executions of the same mechanism on the same data, so
        one ledger describes them all (``None`` in noiseless mode).
    """

    def __init__(
        self,
        tables: np.ndarray,
        n: int,
        horizon: int,
        accountant: ZCDPAccountant | None,
    ):
        self.tables = tables
        self.n = int(n)
        self.horizon = int(horizon)
        self.accountant = accountant

    @property
    def n_reps(self) -> int:
        """Number of replicas ``R``."""
        return self.tables.shape[0]

    def threshold_counts(self, b: int, t: int) -> np.ndarray:
        """``S^_b^t`` for every replica (length-``R`` int vector)."""
        if not 0 <= b <= self.horizon:
            raise ConfigurationError(f"b must lie in [0, {self.horizon}], got {b}")
        if not 1 <= t <= self.horizon:
            raise ConfigurationError(f"t must lie in [1, {self.horizon}], got {t}")
        return self.tables[:, t, b].copy()

    def answer(self, query, t: int) -> np.ndarray:
        """Every replica's answer to a cumulative query at round ``t``."""
        if isinstance(query, HammingAtLeast):
            if query.b > self.horizon:
                return np.zeros(self.n_reps, dtype=np.float64)
            return self.threshold_counts(query.b, t) / self.n
        if isinstance(query, HammingExactly):
            at_least_b = (
                self.threshold_counts(query.b, t)
                if query.b <= self.horizon
                else np.zeros(self.n_reps, dtype=np.int64)
            )
            above = (
                self.threshold_counts(query.b + 1, t)
                if query.b + 1 <= self.horizon
                else np.zeros(self.n_reps, dtype=np.int64)
            )
            return (at_least_b - above) / self.n
        raise ConfigurationError(
            f"batched cumulative release answers HammingAtLeast/HammingExactly, "
            f"got {query!r}"
        )

    def answer_grid(self, queries, times) -> np.ndarray:
        """The full ``(R, n_queries, n_times)`` answer cube.

        Times before a query's ``min_time()`` are ``NaN``, matching the
        serial replication harness.  The workload compiles through
        :func:`repro.queries.plan.compile_cumulative` into one fancy-index
        gather over the table stack — integer arithmetic followed by one
        correctly-rounded division per cell, bit-identical with looping
        :meth:`answer`.
        """
        queries = list(queries)
        times = [int(t) for t in times]
        lower, upper = compile_cumulative(queries, self.horizon)
        out = np.full(
            (self.n_reps, len(queries), len(times)), np.nan, dtype=np.float64
        )
        valid = [i for i, t in enumerate(times) if t >= 1]
        if not valid:
            return out
        # Queries whose thresholds all exceed the horizon compile entirely
        # to the virtual zero column and never validate t — mirror that.
        zero = self.horizon + 1
        if not ((lower != zero) | (upper != zero)).any():
            out[:, :, valid] = 0.0
            return out
        for i in valid:
            if not 1 <= times[i] <= self.horizon:
                raise ConfigurationError(
                    f"t must lie in [1, {self.horizon}], got {times[i]}"
                )
        t_arr = np.asarray([times[i] for i in valid], dtype=np.int64)
        augmented = np.concatenate(
            [self.tables, np.zeros(self.tables.shape[:2] + (1,), dtype=np.int64)],
            axis=2,
        )
        sub = augmented[:, t_arr, :]
        counts = sub[:, :, lower] - sub[:, :, upper]
        out[:, :, valid] = np.transpose(counts / self.n, (0, 2, 1))
        return out

    def check_invariants(self) -> bool:
        """Both monotonicity constraints hold in every replica's table."""
        return all(
            is_monotone_table(self.tables[r], population=self.n)
            for r in range(self.n_reps)
        )

    def __repr__(self) -> str:
        return (
            f"ReplicatedCumulativeRelease(n_reps={self.n_reps}, "
            f"T={self.horizon}, n={self.n})"
        )


def replicate_cumulative(
    dataset: LongitudinalDataset,
    n_reps: int,
    *,
    rho: float,
    counter: str = "binary_tree",
    budget="corollary_b1",
    seed: SeedLike = None,
    noise_method: str = "vectorized",
) -> ReplicatedCumulativeRelease:
    """Run ``n_reps`` independent Algorithm-2 executions as one batch.

    Parameters mirror :class:`~repro.core.cumulative.CumulativeSynthesizer`
    (the horizon is taken from the dataset); ``budget`` additionally
    accepts an explicit per-threshold vector, which lets the replication
    harness reuse a probed synthesizer's allocation verbatim.  Requires a
    counter with a native vectorized bank (``binary_tree``, ``simple``,
    ``sqrt_factorization``, ``laplace_tree``); counters that only exist as
    scalar objects have no rep axis and must replicate serially or via the
    process pool.
    """
    if n_reps <= 0:
        raise ConfigurationError(f"n_reps must be positive, got {n_reps}")
    if not rho > 0:
        raise ConfigurationError(f"rho must be positive (or math.inf), got {rho}")
    if counter not in available_counters():
        raise ConfigurationError(
            f"unknown counter {counter!r}; available: {sorted(available_counters())}"
        )
    horizon = dataset.horizon
    n = dataset.n_individuals
    if n <= 0:
        raise DataValidationError(f"need at least one individual, got n={n}")
    rho_per_threshold = allocate_budget(horizon, rho, budget)
    accountant = None if math.isinf(rho) else ZCDPAccountant(rho)
    generator = as_generator(seed)
    bank = make_bank(
        counter,
        horizon=horizon,
        rho_per_threshold=rho_per_threshold,
        seeds=generator,
        noise_method=noise_method,
        n_reps=n_reps,
    )

    tables = np.zeros((n_reps, horizon + 1, horizon + 1), dtype=np.int64)
    tables[:, :, 0] = n
    weights = np.zeros(n, dtype=np.int64)
    for t, column in enumerate(dataset.columns(), start=1):
        column = np.asarray(column, dtype=np.int64)
        # Stream increments z_b^t from the original data (shared by reps).
        z = stream_increments(weights, column, t)

        # Stage 1: one batched advance of every active counter, all reps.
        noisy = np.rint(np.atleast_2d(bank.feed(z))).astype(np.int64)
        if accountant is not None:
            # Threshold b = t activates this round; every replica charges
            # the same rho_b, so the shared ledger records it once.
            accountant.charge(
                float(rho_per_threshold[t - 1]), label=counter_charge_label(t)
            )

        # Stage 2: monotonize all reps against their previous rows.
        previous = tables[:, t - 1, : t + 1]
        tables[:, t, 1 : t + 1] = monotonize_rows(noisy, previous, population=n)
        tables[:, t, t + 1 :] = tables[:, t - 1, t + 1 :]

    return ReplicatedCumulativeRelease(tables, n, horizon, accountant)
