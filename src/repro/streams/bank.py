"""Vectorized counter banks: many stream counters as one batched state machine.

Algorithm 2 runs one DP stream counter per Hamming-weight threshold
``b = 1, ..., T``.  All of those counters are *homogeneous* — same
mechanism, staggered start times (counter ``b`` goes live at round ``b``),
heterogeneous noise scales (each threshold has its own ``rho_b`` from
:func:`repro.core.budget.allocate_budget`).  Executing them as ``T``
independent Python objects costs an O(T log T) interpreter hot path per
round; a :class:`CounterBank` advances the whole family in lockstep with
NumPy array operations and a *single* batched noise draw per round, via the
heterogeneous-scale :meth:`~repro.dp.discrete_gaussian.DiscreteGaussianSampler.sample_columns`
API.

Bank row ``r`` (0-indexed) is the counter for threshold ``b = r + 1``: it
has effective horizon ``T - r`` and activates at global round ``r + 1``
with local clock ``t_b = t - r``.  :meth:`CounterBank.feed` consumes the
length-``t`` increment vector ``z^t = (z_1^t, ..., z_t^t)`` at global round
``t`` and returns the noisy prefix-sum estimates for all active rows.

Native vectorized banks are provided for the binary-tree (Gaussian and
Laplace), simple, and square-root-factorization counters; every other
registered counter keeps working through :class:`FallbackBank`, which wraps
the scalar :class:`~repro.streams.base.StreamCounter` objects behind the
same interface.  In noiseless mode (``rho_b = inf``) every native bank is
bit-exact with its scalar counterpart — the equivalence tests in
``tests/streams/test_bank.py`` pin this down.

**Rep axis.**  Every native bank additionally accepts ``n_reps=R`` and then
runs ``R`` statistically independent replicas of the whole counter family
in lockstep: state arrays carry a leading rep axis, each round draws one
``(R, rows)`` noise block via the ``size``-aware
:meth:`~repro.dp.discrete_gaussian.DiscreteGaussianSampler.sample_columns`
API, and :meth:`CounterBank.feed` returns a ``(R, t)`` estimate matrix.
The increments are shared across replicas (all repetitions of a figure see
the same panel); only the noise differs.  This is the engine behind
``replicate_synthesizer(strategy="batched")``, which collapses the
1000-repetition Python loop of the paper's figures into one batched NumPy
state machine.  With ``n_reps=1`` (default) the public shapes and the
noise bit-stream are unchanged from the single-run bank.

**Row growth.**  :meth:`CounterBank.extend_rows` appends threshold rows
mid-stream — the bank half of dynamic-population horizon extension
(``CumulativeSynthesizer.extend_horizon``): existing rows' RNG streams
and calibrations are untouched, and the method returns the exact extra
zCDP each widened row realizes so the caller's accountant can charge it.
Native tree and simple banks support it; the square-root-factorization
bank and the scalar-wrapping fallback refuse (their noise state is
horizon-specific).
"""

from __future__ import annotations

import abc
import math
from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.dp.discrete_gaussian import DiscreteGaussianSampler
from repro.dp.discrete_laplace import DiscreteLaplaceSampler
from repro.exceptions import ConfigurationError, SerializationError, StreamLengthError
from repro.rng import (
    SeedLike,
    as_generator,
    generator_state,
    restore_generator_state,
    spawn,
)
from repro.streams.layout import ArrayArena
from repro.streams.sqrt_factorization import sqrt_factorization_coefficients

__all__ = [
    "CounterBank",
    "BinaryTreeBank",
    "LaplaceTreeBank",
    "SimpleBank",
    "SqrtFactorizationBank",
    "FallbackBank",
]


class CounterBank(abc.ABC):
    """A batch of ``T`` staggered stream counters advanced in lockstep.

    Parameters
    ----------
    horizon:
        Global horizon ``T``; the bank holds one counter row per threshold
        ``b = 1..T``, row ``b - 1`` with effective horizon ``T - b + 1``.
    rho_per_threshold:
        Length-``T`` vector of per-row zCDP budgets (``math.inf`` entries
        yield noiseless rows).
    seeds:
        Either a single :data:`~repro.rng.SeedLike` (spawned into per-row
        children) or an explicit length-``T`` sequence of per-row seeds —
        the synthesizer passes its spawned counter seeds so that the
        fallback path reproduces the scalar engine exactly.
    noise_method:
        ``"exact"`` or ``"vectorized"`` noise backend, forwarded to the
        batched samplers (and to wrapped counters in the fallback).
    n_reps:
        Number of independent replicas advanced in lockstep (the rep
        axis).  With ``n_reps=1`` (default) :meth:`feed` returns the legacy
        ``(t,)`` vector; with ``n_reps=R > 1`` it returns ``(R, t)``.
    """

    def __init__(
        self,
        horizon: int,
        rho_per_threshold,
        seeds: SeedLike | Sequence = None,
        noise_method: str = "vectorized",
        n_reps: int = 1,
    ):
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if noise_method not in ("exact", "vectorized"):
            raise ConfigurationError(
                f"noise_method must be 'exact' or 'vectorized', got {noise_method!r}"
            )
        if n_reps < 1:
            raise ConfigurationError(f"n_reps must be >= 1, got {n_reps}")
        rho = np.asarray(rho_per_threshold, dtype=np.float64)
        if rho.shape != (horizon,):
            raise ConfigurationError(
                f"rho_per_threshold must have length T={horizon}, got shape {rho.shape}"
            )
        if not (rho > 0).all():
            raise ConfigurationError("every rho_b must be positive (or math.inf)")
        self.horizon = int(horizon)
        self.rho_per_threshold = rho
        self.noise_method = noise_method
        self.n_reps = int(n_reps)
        if isinstance(seeds, (list, tuple)):
            if len(seeds) != horizon:
                raise ConfigurationError(
                    f"seeds sequence must have length T={horizon}, got {len(seeds)}"
                )
            self._row_seeds = list(seeds)
        else:
            self._row_seeds = spawn(seeds, horizon)
        # Native banks draw all their noise from one generator; the
        # fallback hands each wrapped counter its own row seed instead.
        self._generator = as_generator(self._row_seeds[0])
        self._t = 0
        self._true_sums = np.zeros(horizon, dtype=np.int64)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def t(self) -> int:
        """Global rounds consumed so far (== number of active rows)."""
        return self._t

    @property
    def active(self) -> int:
        """Number of live rows: row ``b - 1`` activates at round ``b``."""
        return self._t

    @property
    def true_sums(self) -> np.ndarray:
        """Exact per-row running sums (internal state, *not* private)."""
        return self._true_sums.copy()

    def row_horizons(self) -> np.ndarray:
        """Effective horizon ``T - b + 1`` per row, indexed by ``b - 1``."""
        return self.horizon - np.arange(self.horizon, dtype=np.int64)

    def feed(self, z) -> np.ndarray:
        """Advance one global round.

        ``z`` must be the length-``t`` increment vector for the new round
        ``t`` (``z[b-1]`` feeds threshold ``b``'s counter; the row for
        ``b = t`` activates this round and receives its first element).
        The increments are shared by every replica.  Returns the float64
        noisy prefix-sum estimates for rows ``b = 1..t`` — shape ``(t,)``
        for ``n_reps == 1``, ``(n_reps, t)`` otherwise.
        """
        if self._t >= self.horizon:
            raise StreamLengthError(
                f"bank with horizon {self.horizon} received round {self._t + 1}"
            )
        t = self._t + 1
        z = np.asarray(z)
        if z.shape != (t,):
            raise ConfigurationError(
                f"round {t} expects an increment vector of shape ({t},), got {z.shape}"
            )
        z = z.astype(np.int64)
        if (z < 0).any():
            raise ConfigurationError("stream increments must be non-negative")
        self._t = t
        self._true_sums[:t] += z
        estimates = np.asarray(self._feed(z), dtype=np.float64)
        if estimates.shape == (t,):
            estimates = estimates[None, :]
        if estimates.shape != (self.n_reps, t):
            raise ConfigurationError(
                f"bank produced shape {estimates.shape}, expected ({self.n_reps}, {t})"
            )
        return estimates[0] if self.n_reps == 1 else estimates

    def run(self, increments: np.ndarray) -> np.ndarray:
        """Feed a full ``(T, T)`` lower-triangular increment table.

        ``increments[t-1, :t]`` is the round-``t`` vector; returns the
        ``(T, T)`` table of estimates (row ``t-1`` holds rounds ``1..t``,
        zero above the diagonal), with a leading rep axis when
        ``n_reps > 1``.  Convenience driver for tests and benchmarks.
        """
        increments = np.asarray(increments, dtype=np.int64)
        if increments.shape != (self.horizon, self.horizon):
            raise ConfigurationError(
                f"increment table must be (T, T)={self.horizon, self.horizon}, "
                f"got {increments.shape}"
            )
        out = np.zeros((self.n_reps, self.horizon, self.horizon), dtype=np.float64)
        for t in range(1, self.horizon + 1):
            out[:, t - 1, :t] = self.feed(increments[t - 1, :t])
        return out[0] if self.n_reps == 1 else out

    def extend_rows(self, k: int, rho_new) -> np.ndarray:
        """Grow the bank by ``k`` rows, extending the horizon to ``T + k``.

        Appends counter state for thresholds ``T+1 .. T+k`` (each
        calibrated for its activation-to-end stream) and widens every
        existing row's capacity to the new horizon **without perturbing
        existing rows' RNG streams**: no randomness is consumed, no
        buffer is reseeded or repositioned, and the per-row noise
        calibration already in force is kept.  Because a longer stream
        touches more noisy state at that unchanged calibration, each
        existing row's zCDP guarantee weakens; the exact additional cost
        per row is returned so the caller's accountant can charge it —
        this is the churn-aware half of dynamic-population accounting
        (a panel that outlives its planned horizon as the population
        churns).

        Parameters
        ----------
        k:
            Number of appended rows (and extra rounds); positive.
        rho_new:
            Length-``k`` per-row zCDP budgets for the new thresholds
            (``math.inf`` entries yield noiseless rows).

        Returns
        -------
        numpy.ndarray
            Length-``T`` (old horizon) vector of *additional* zCDP each
            existing row's extended stream costs under its unchanged
            calibration; 0 for noiseless rows.

        Raises
        ------
        repro.exceptions.ConfigurationError
            If ``k`` is not positive, ``rho_new`` is malformed, or this
            bank class does not support row growth
            (:class:`SqrtFactorizationBank`'s noise factorization and
            :class:`FallbackBank`'s wrapped scalar counters are
            horizon-specific).
        """
        if not self._supports_extension:
            raise ConfigurationError(
                f"{type(self).__name__} does not support extend_rows: its noise "
                "state is calibrated for a fixed horizon"
            )
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        rho_new = np.asarray(rho_new, dtype=np.float64)
        if rho_new.shape != (k,):
            raise ConfigurationError(
                f"rho_new must have length k={k}, got shape {rho_new.shape}"
            )
        if not (rho_new > 0).all():
            raise ConfigurationError("every new rho_b must be positive (or math.inf)")
        old_horizon = self.horizon
        old_lengths = self.row_horizons()
        self.horizon = old_horizon + int(k)
        self.rho_per_threshold = np.concatenate([self.rho_per_threshold, rho_new])
        self._true_sums = np.concatenate(
            [self._true_sums, np.zeros(k, dtype=np.int64)]
        )
        return self._extend_rows_extra(int(k), old_horizon, old_lengths)

    #: Subclasses with horizon-extensible noise state flip this on.
    _supports_extension = False

    def _extend_rows_extra(
        self, k: int, old_horizon: int, old_lengths: np.ndarray
    ) -> np.ndarray:
        """Subclass hook: grow state arrays; return per-old-row extra rho."""
        raise NotImplementedError  # pragma: no cover - guarded by extend_rows

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(horizon={self.horizon}, t={self._t}, "
            f"noise_method={self.noise_method!r})"
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self, *, copy: bool = True) -> dict:
        """Snapshot the bank's full mid-stream state.

        Parameters
        ----------
        copy:
            Copy the state arrays into the snapshot (default, safe to
            hold across further rounds).  ``copy=False`` returns live
            views of the bank's buffers instead — the streaming
            checkpoint writer uses this to spool arrays into the bundle
            without materializing a second copy of the bank state; such a
            snapshot must be fully consumed before the bank advances.

        Returns
        -------
        dict
            The bank class name, global clock, exact per-row running sums
            (``int64`` array), the noise generator's bit-generator state,
            and subclass-specific buffers (tree levels, correlated-noise
            history, wrapped-counter states).  Array values stay NumPy
            arrays — the :mod:`repro.serve` checkpoint layer routes them
            into the bundle's array members.  A restored bank continues
            the stream with byte-identical noise draws.
        """
        return {
            "type": type(self).__name__,
            "t": int(self._t),
            "true_sums": self._true_sums.copy() if copy else self._true_sums,
            "generator": generator_state(self._generator),
            "extra": self._state_extra(copy),
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict` in place.

        Parameters
        ----------
        state:
            A snapshot from a bank of the same class, built with the same
            ``(horizon, rho_per_threshold, noise_method, n_reps)``.

        Raises
        ------
        repro.exceptions.SerializationError
            If the snapshot names a different bank class, its clock lies
            outside ``[0, horizon]``, or a state array has the wrong
            shape.
        """
        if not isinstance(state, dict):
            raise SerializationError(
                f"bank state must be a dict, got {type(state).__name__}"
            )
        declared = state.get("type")
        if declared != type(self).__name__:
            raise SerializationError(
                f"bank state for {declared!r} cannot be loaded into "
                f"a {type(self).__name__}"
            )
        try:
            t = int(state["t"])
            # Copy: a restored bank must never alias (and later mutate in
            # place) the arrays of the snapshot it was built from.
            true_sums = np.array(state["true_sums"], dtype=np.int64)
            generator = state["generator"]
            extra = state["extra"]
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid bank state: {exc}") from exc
        if not 0 <= t <= self.horizon:
            raise SerializationError(
                f"bank clock {t} outside [0, horizon={self.horizon}]"
            )
        if true_sums.shape != self._true_sums.shape:
            raise SerializationError(
                f"true_sums has shape {true_sums.shape}, "
                f"expected {self._true_sums.shape}"
            )
        self._t = t
        self._true_sums = true_sums
        self._load_extra(extra)
        # Generator last: a snapshot rejected above never leaves the bank
        # with a repositioned noise stream (the silent-divergence case).
        restore_generator_state(self._generator, generator)

    def _state_extra(self, copy: bool = True) -> dict:
        """Subclass hook: state beyond the base fields (arrays allowed).

        ``copy=False`` may return live views of the bank's buffers (see
        :meth:`state_dict`).
        """
        return {}

    def _load_extra(self, extra: dict) -> None:
        """Subclass hook: restore what :meth:`_state_extra` captured."""

    def _require_array(self, extra: dict, key: str, like: np.ndarray) -> np.ndarray:
        """Fetch ``extra[key]`` as a fresh array shaped/typed like ``like``."""
        try:
            array = np.array(extra[key], dtype=like.dtype)  # copy: never alias
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid bank state array {key!r}: {exc}") from exc
        if array.shape != like.shape:
            raise SerializationError(
                f"bank state array {key!r} has shape {array.shape}, "
                f"expected {like.shape}"
            )
        return array

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _feed(self, z: np.ndarray) -> np.ndarray:
        """Consume the round-``t`` increments (clock already advanced)."""

    @abc.abstractmethod
    def error_stddev(self, b: int, t: int) -> float:
        """Stddev of threshold ``b``'s estimate at *local* stream time ``t``.

        Mirrors :meth:`repro.streams.base.StreamCounter.error_stddev` row
        by row; used by the confidence-interval machinery.
        """

    def _check_row(self, b: int) -> None:
        if not 1 <= b <= self.horizon:
            raise ConfigurationError(f"b must lie in [1, {self.horizon}], got {b}")

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _rep_noise(self, sampler, scales) -> np.ndarray:
        """One ``(n_reps, len(scales))`` heterogeneous draw.

        The ``n_reps == 1`` arm calls the legacy 1-D ``sample_columns``
        path so a single-run bank consumes exactly the PR-1 bit-stream;
        the replicated arm uses the ``size``-aware batched API.  All
        native banks draw through this helper so the two arms cannot
        drift per bank.
        """
        if self.n_reps == 1:
            return sampler.sample_columns(scales)[None, :]
        return sampler.sample_columns(scales, size=self.n_reps)

    def _gaussian_sigma_sq_rows(self, numerators, rho_rows=None) -> list[Fraction]:
        """Per-row ``numerator / (2 rho_b)`` variances as exact Fractions.

        Mirrors the scalar counters' Fraction arithmetic
        (``Fraction(num) / Fraction(2 rho).limit_denominator(10**9)``) so
        exact-mode noise has the same distribution as the scalar engine.
        ``rho_rows`` defaults to the full per-threshold budget vector;
        :meth:`extend_rows` passes just the appended rows' budgets.
        """
        out = []
        if rho_rows is None:
            rho_rows = self.rho_per_threshold
        for numerator, rho_b in zip(numerators, rho_rows):
            if math.isinf(rho_b):
                out.append(Fraction(0))
            else:
                out.append(
                    Fraction(int(numerator))
                    / Fraction(2 * rho_b).limit_denominator(10**9)
                )
        return out


class _TreeBankCore(CounterBank):
    """Shared batched state machine for binary-tree-shaped banks.

    Row ``r`` mirrors Algorithm 3's streaming form at its local clock
    ``t_r = t - r``: level-``j`` buffers ``alpha[rep, r, j]`` accumulate
    partial sums, a completed level folds all lower levels, and the estimate
    sums the noisy buffers selected by the binary representation of ``t_r``.
    All rows — and all replicas along the leading rep axis — fold, draw
    noise, and read out together; the fold pattern depends only on the
    clock, so it is shared across replicas and only the noise block is
    per-rep.
    """

    def __init__(
        self, horizon, rho_per_threshold, seeds=None, noise_method="vectorized", n_reps=1
    ):
        super().__init__(
            horizon, rho_per_threshold, seeds=seeds, noise_method=noise_method,
            n_reps=n_reps,
        )
        lengths = self.row_horizons()
        self.levels = np.array([int(n).bit_length() for n in lengths], dtype=np.int64)
        n_levels = int(self.levels[0])  # row 0 has the longest stream
        # Both level-buffer families live in one contiguous arena block,
        # column-major, so a shard's whole tree state is a single buffer
        # (snapshot-able, shareable across processes).
        self._arena = self._tree_arena(n_levels)
        self._alpha = self._arena["alpha"]
        self._alpha_noisy = self._arena["alpha_noisy"]
        self._level_idx = np.arange(n_levels, dtype=np.int64)

    def _tree_arena(self, n_levels: int) -> ArrayArena:
        """One contiguous block for both level-buffer families."""
        shape = (self.n_reps, self.horizon, n_levels)
        return ArrayArena(
            [("alpha", shape, np.int64, "F"), ("alpha_noisy", shape, np.int64, "F")]
        )

    def _feed(self, z: np.ndarray) -> np.ndarray:
        t = self._t
        local = t - np.arange(t, dtype=np.int64)  # local clocks, rows 0..t-1
        lowest = local & -local
        fold_level = np.round(np.log2(lowest)).astype(np.int64)

        alpha = self._alpha[:, :t]  # (R, t, L) views into the state
        alpha_noisy = self._alpha_noisy[:, :t]
        rows = np.arange(t)
        # sum of levels below the fold target, via per-row prefix sums
        prefix = np.cumsum(alpha, axis=2)
        below = np.where(
            fold_level[None, :] > 0,
            prefix[:, rows, np.maximum(fold_level - 1, 0)],
            0,
        )
        folded = below + z[None, :]
        clear = self._level_idx[None, :] < fold_level[:, None]  # (t, L)
        alpha[:, clear] = 0
        alpha_noisy[:, clear] = 0
        alpha[:, rows, fold_level] = folded
        noise = self._round_noise(t)
        alpha_noisy[:, rows, fold_level] = folded + noise
        # Dyadic decomposition of [1, t_r] = the set bits of the local clock.
        bits = (local[:, None] >> self._level_idx[None, :]) & 1
        return (alpha_noisy * bits[None, :, :]).sum(axis=2).astype(np.float64)

    _supports_extension = True

    def _extend_rows_extra(
        self, k: int, old_horizon: int, old_lengths: np.ndarray
    ) -> np.ndarray:
        old_levels = self.levels
        lengths = self.row_horizons()
        self.levels = np.array([int(n).bit_length() for n in lengths], dtype=np.int64)
        n_levels = int(self.levels[0])
        # Appending rows and (zero) level buffers preserves every existing
        # buffer value in place; deeper local clocks of the widened rows
        # simply start folding into the fresh columns.  The arena cannot
        # grow, so the extension builds one for the new layout and copies.
        grown_arena = self._tree_arena(n_levels)
        grown = grown_arena["alpha"]
        grown[:, :old_horizon, : self._alpha.shape[2]] = self._alpha
        grown_noisy = grown_arena["alpha_noisy"]
        grown_noisy[:, :old_horizon, : self._alpha_noisy.shape[2]] = self._alpha_noisy
        self._arena = grown_arena
        self._alpha, self._alpha_noisy = grown, grown_noisy
        self._level_idx = np.arange(n_levels, dtype=np.int64)
        extra = self._extension_cost(old_levels, self.levels[:old_horizon])
        self._append_rows_noise(k)
        return extra

    @abc.abstractmethod
    def _extension_cost(
        self, old_levels: np.ndarray, new_levels: np.ndarray
    ) -> np.ndarray:
        """Extra zCDP per existing row when its tree gains levels."""

    @abc.abstractmethod
    def _append_rows_noise(self, k: int) -> None:
        """Append the noise calibration for the ``k`` new rows."""

    def _state_extra(self, copy: bool = True) -> dict:
        if not copy:
            return {"alpha": self._alpha, "alpha_noisy": self._alpha_noisy}
        return {
            "alpha": self._alpha.copy(),
            "alpha_noisy": self._alpha_noisy.copy(),
        }

    def _load_extra(self, extra: dict) -> None:
        # Copy *into* the arena views: restoring must not unhook the
        # state from its contiguous backing block.
        self._alpha[...] = self._require_array(extra, "alpha", self._alpha)
        self._alpha_noisy[...] = self._require_array(
            extra, "alpha_noisy", self._alpha_noisy
        )

    @abc.abstractmethod
    def _round_noise(self, t: int) -> np.ndarray:
        """One fresh noise block per round: int64 ``(n_reps, t)``."""

    @abc.abstractmethod
    def _node_variance(self, b: int) -> float:
        """Per-node noise variance of threshold ``b``'s tree."""

    def error_stddev(self, b: int, t: int) -> float:
        """``sqrt(popcount(t) * node_variance)`` — one node per set bit."""
        self._check_row(b)
        if t <= 0:
            return 0.0
        return math.sqrt(int(t).bit_count() * self._node_variance(b))


class BinaryTreeBank(_TreeBankCore):
    """Batched :class:`~repro.streams.binary_tree.BinaryTreeCounter` rows.

    Per-row noise variance ``L_b / (2 rho_b)`` with ``L_b`` the row's own
    dyadic level count — exactly the scalar counter's calibration.
    """

    def __init__(
        self, horizon, rho_per_threshold, seeds=None, noise_method="vectorized", n_reps=1
    ):
        super().__init__(
            horizon, rho_per_threshold, seeds=seeds, noise_method=noise_method,
            n_reps=n_reps,
        )
        self.sigma_sq_rows = self._gaussian_sigma_sq_rows(self.levels)
        self._sigma_sq_float = np.array(
            [float(s) for s in self.sigma_sq_rows], dtype=np.float64
        )
        self._sampler = DiscreteGaussianSampler(
            0, seed=self._generator, method=self.noise_method
        )

    def _round_noise(self, t: int) -> np.ndarray:
        scales = (
            self.sigma_sq_rows[:t]
            if self.noise_method == "exact"
            else self._sigma_sq_float[:t]
        )
        return self._rep_noise(self._sampler, scales)

    def _node_variance(self, b: int) -> float:
        return float(self._sigma_sq_float[b - 1])

    def _extension_cost(
        self, old_levels: np.ndarray, new_levels: np.ndarray
    ) -> np.ndarray:
        # sigma^2 = L / (2 rho) stays fixed, so a stream touching L' > L
        # levels realizes rho' = rho L'/L; the difference is the charge.
        extra = np.zeros(old_levels.shape[0], dtype=np.float64)
        finite = np.isfinite(self.rho_per_threshold[: old_levels.shape[0]])
        extra[finite] = (
            self.rho_per_threshold[: old_levels.shape[0]][finite]
            * (new_levels[finite] - old_levels[finite])
            / old_levels[finite]
        )
        return extra

    def _append_rows_noise(self, k: int) -> None:
        appended = self._gaussian_sigma_sq_rows(
            self.levels[-k:], self.rho_per_threshold[-k:]
        )
        self.sigma_sq_rows = list(self.sigma_sq_rows) + appended
        self._sigma_sq_float = np.concatenate(
            [self._sigma_sq_float, np.array([float(s) for s in appended])]
        )


class LaplaceTreeBank(_TreeBankCore):
    """Batched :class:`~repro.streams.laplace_tree.LaplaceTreeCounter` rows.

    Per-row discrete Laplace scale ``L_b / eps_b`` with
    ``eps_b = sqrt(2 rho_b)`` — the pure-DP tree variant.
    """

    def __init__(
        self, horizon, rho_per_threshold, seeds=None, noise_method="vectorized", n_reps=1
    ):
        super().__init__(
            horizon, rho_per_threshold, seeds=seeds, noise_method=noise_method,
            n_reps=n_reps,
        )
        self.scale_rows = []
        for levels_b, rho_b in zip(self.levels, self.rho_per_threshold):
            if math.isinf(rho_b):
                self.scale_rows.append(Fraction(0))
            else:
                epsilon = math.sqrt(2.0 * rho_b)
                self.scale_rows.append(
                    Fraction(int(levels_b)) / Fraction(epsilon).limit_denominator(10**9)
                )
        self._scale_float = np.array([float(s) for s in self.scale_rows], dtype=np.float64)
        self._sampler = DiscreteLaplaceSampler(
            1, seed=self._generator, method=self.noise_method
        )

    def _round_noise(self, t: int) -> np.ndarray:
        scales = (
            self.scale_rows[:t] if self.noise_method == "exact" else self._scale_float[:t]
        )
        return self._rep_noise(self._sampler, scales)

    def _node_variance(self, b: int) -> float:
        scale = float(self._scale_float[b - 1])
        if scale == 0:
            return 0.0
        p = math.exp(-1.0 / scale)
        return 2.0 * p / (1.0 - p) ** 2

    def _extension_cost(
        self, old_levels: np.ndarray, new_levels: np.ndarray
    ) -> np.ndarray:
        # The per-node scale L/eps stays fixed, so a stream touching
        # L' > L nodes realizes eps' = eps L'/L (pure-DP composition) and
        # rho' = eps'^2/2 = rho (L'/L)^2; the difference is the charge.
        extra = np.zeros(old_levels.shape[0], dtype=np.float64)
        finite = np.isfinite(self.rho_per_threshold[: old_levels.shape[0]])
        ratio = new_levels[finite] / old_levels[finite]
        extra[finite] = self.rho_per_threshold[: old_levels.shape[0]][finite] * (
            ratio**2 - 1.0
        )
        return extra

    def _append_rows_noise(self, k: int) -> None:
        appended = []
        for levels_b, rho_b in zip(self.levels[-k:], self.rho_per_threshold[-k:]):
            if math.isinf(rho_b):
                appended.append(Fraction(0))
            else:
                epsilon = math.sqrt(2.0 * rho_b)
                appended.append(
                    Fraction(int(levels_b)) / Fraction(epsilon).limit_denominator(10**9)
                )
        self.scale_rows = list(self.scale_rows) + appended
        self._scale_float = np.concatenate(
            [self._scale_float, np.array([float(s) for s in appended])]
        )


class SimpleBank(CounterBank):
    """Batched :class:`~repro.streams.simple.SimpleCounter` rows.

    Fresh per-row noise on every prefix sum at variance
    ``(T - b + 1) / (2 rho_b)`` — the naive ``sqrt(T)`` baseline, now one
    vector add plus one batched draw per round.
    """

    def __init__(
        self, horizon, rho_per_threshold, seeds=None, noise_method="vectorized", n_reps=1
    ):
        super().__init__(
            horizon, rho_per_threshold, seeds=seeds, noise_method=noise_method,
            n_reps=n_reps,
        )
        self.sigma_sq_rows = self._gaussian_sigma_sq_rows(self.row_horizons())
        self._sigma_sq_float = np.array(
            [float(s) for s in self.sigma_sq_rows], dtype=np.float64
        )
        self._sampler = DiscreteGaussianSampler(
            0, seed=self._generator, method=self.noise_method
        )

    def _feed(self, z: np.ndarray) -> np.ndarray:
        t = self._t
        scales = (
            self.sigma_sq_rows[:t]
            if self.noise_method == "exact"
            else self._sigma_sq_float[:t]
        )
        noise = self._rep_noise(self._sampler, scales)
        return (self._true_sums[:t][None, :] + noise).astype(np.float64)

    def error_stddev(self, b: int, t: int) -> float:
        self._check_row(b)
        return math.sqrt(float(self._sigma_sq_float[b - 1]))

    _supports_extension = True

    def _extend_rows_extra(
        self, k: int, old_horizon: int, old_lengths: np.ndarray
    ) -> np.ndarray:
        # Fresh noise per release at fixed sigma^2 = len/(2 rho): each of
        # the k extra releases costs rho/len more, per existing row.
        rho_old = self.rho_per_threshold[:old_horizon]
        extra = np.zeros(old_horizon, dtype=np.float64)
        finite = np.isfinite(rho_old)
        extra[finite] = k * rho_old[finite] / old_lengths[finite]
        appended = self._gaussian_sigma_sq_rows(
            self.row_horizons()[-k:], self.rho_per_threshold[-k:]
        )
        self.sigma_sq_rows = list(self.sigma_sq_rows) + appended
        self._sigma_sq_float = np.concatenate(
            [self._sigma_sq_float, np.array([float(s) for s in appended])]
        )
        return extra


class SqrtFactorizationBank(CounterBank):
    """Batched :class:`~repro.streams.sqrt_factorization.SqrtFactorizationCounter` rows.

    Row ``r``'s correlated noise at global round ``t`` is
    ``sum_s f_{t-s} xi[rep, r, s]`` over the rounds ``s`` since its
    activation; storing the i.i.d. draws ``xi`` aligned by *global* round
    (zero before activation) turns all rows' correlations into one
    matrix-vector product with the reversed coefficient prefix, batched
    over the rep axis.  Note the replicated state is ``(R, T, T)`` floats —
    size the rep count accordingly for very long horizons.
    """

    def __init__(
        self, horizon, rho_per_threshold, seeds=None, noise_method="vectorized", n_reps=1
    ):
        super().__init__(
            horizon, rho_per_threshold, seeds=seeds, noise_method=noise_method,
            n_reps=n_reps,
        )
        self.coefficients = sqrt_factorization_coefficients(self.horizon)
        norm_sq = np.cumsum(self.coefficients**2)
        col_norm_sq = norm_sq[self.row_horizons() - 1]
        with np.errstate(divide="ignore"):
            sigma_sq = np.where(
                np.isinf(self.rho_per_threshold),
                0.0,
                col_norm_sq / (2.0 * self.rho_per_threshold),
            )
        self.sigma_rows = np.sqrt(sigma_sq)
        self._noiseless = bool((self.sigma_rows == 0).all())
        self._arena = ArrayArena(
            [("xi", (self.n_reps, self.horizon, self.horizon), np.float64, "F")]
        )
        self._xi = self._arena["xi"]

    def _feed(self, z: np.ndarray) -> np.ndarray:
        t = self._t
        if self._noiseless:
            return np.tile(self._true_sums[:t].astype(np.float64), (self.n_reps, 1))
        if self.n_reps == 1:
            # Keep the exact single-run draw call (and bit-stream) of PR 1.
            self._xi[0, :t, t - 1] = self._generator.normal(0.0, self.sigma_rows[:t])
        else:
            self._xi[:, :t, t - 1] = self._generator.normal(
                0.0, self.sigma_rows[:t], size=(self.n_reps, t)
            )
        correlated = self._xi[:, :t, :t] @ self.coefficients[:t][::-1]
        return self._true_sums[:t][None, :] + correlated

    def _state_extra(self, copy: bool = True) -> dict:
        return {"xi": self._xi.copy() if copy else self._xi}

    def _load_extra(self, extra: dict) -> None:
        self._xi[...] = self._require_array(extra, "xi", self._xi)

    def error_stddev(self, b: int, t: int) -> float:
        self._check_row(b)
        sigma = float(self.sigma_rows[b - 1])
        if t <= 0 or sigma == 0:
            return 0.0
        prefix_norm_sq = float(np.sum(self.coefficients[:t] ** 2))
        return sigma * math.sqrt(prefix_norm_sq)


class FallbackBank(CounterBank):
    """Adapter running any registered scalar counter behind the bank API.

    Keeps every counter name usable with ``engine="vectorized"``: row ``b``
    is a lazily-created scalar :class:`~repro.streams.base.StreamCounter`
    seeded from the bank's per-row seed stream, so the outputs are
    *identical* to the scalar engine under the same seeds — the per-round
    cost stays scalar, which is what the native banks above eliminate.
    """

    def __init__(
        self,
        horizon,
        rho_per_threshold,
        seeds=None,
        noise_method="vectorized",
        n_reps: int = 1,
        counter: str = "binary_tree",
        counter_kwargs: dict | None = None,
    ):
        if n_reps != 1:
            raise ConfigurationError(
                f"FallbackBank wraps scalar counters and has no rep axis; "
                f"n_reps must be 1, got {n_reps} (counter {counter!r} has no "
                "native vectorized bank)"
            )
        super().__init__(horizon, rho_per_threshold, seeds=seeds, noise_method=noise_method)
        self.counter_name = counter
        self._counter_kwargs = dict(counter_kwargs or {})
        self._counters: list = []

    @property
    def counters(self) -> tuple:
        """The wrapped scalar counters, indexed by ``b - 1`` (active rows)."""
        return tuple(self._counters)

    def _feed(self, z: np.ndarray) -> np.ndarray:
        from repro.streams.registry import make_counter

        t = self._t
        self._counters.append(
            make_counter(
                self.counter_name,
                horizon=self.horizon - t + 1,
                rho=float(self.rho_per_threshold[t - 1]),
                seed=self._row_seeds[t - 1],
                noise_method=self.noise_method,
                **self._counter_kwargs,
            )
        )
        return np.array(
            [counter.feed(int(z_b)) for counter, z_b in zip(self._counters, z)],
            dtype=np.float64,
        )

    def _state_extra(self, copy: bool = True) -> dict:
        # Wrapped scalar counters serialize through their own state_dict
        # (JSON-safe payloads, keyed by row index as a string).  Rows that
        # have not activated yet will draw from their row-seed generators
        # later, so those bit states must travel too — otherwise a restore
        # into a differently-seeded host bank diverges from round t+1 on.
        # (Non-Generator row seeds — ints, SeedSequences — are immutable
        # and rebuild deterministically, so only Generators are captured.)
        return {
            "counters": {
                str(index): counter.state_dict()
                for index, counter in enumerate(self._counters)
            },
            "row_seed_states": {
                str(index): generator_state(seed)
                for index, seed in enumerate(self._row_seeds)
                if isinstance(seed, np.random.Generator)
            },
        }

    def _load_extra(self, extra: dict) -> None:
        from repro.streams.registry import restore_counter

        try:
            payloads = dict(extra["counters"])
            row_keys = sorted(int(k) for k in payloads)
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid fallback-bank state: {exc}") from exc
        if row_keys != list(range(len(payloads))):
            raise SerializationError(
                f"fallback-bank counter states must cover rows 0..{len(payloads) - 1}"
            )
        # One counter activates per round, so the restored clock (set by
        # load_state before this hook runs) pins the expected row count.
        if len(payloads) != self._t:
            raise SerializationError(
                f"fallback-bank state holds {len(payloads)} counters at "
                f"clock t={self._t}; expected exactly {self._t}"
            )
        for key, seed_state in dict(extra.get("row_seed_states", {})).items():
            try:
                index = int(key)
                seed = self._row_seeds[index]
            except (ValueError, IndexError) as exc:
                raise SerializationError(
                    f"invalid fallback-bank row-seed entry {key!r}: {exc}"
                ) from exc
            if isinstance(seed, np.random.Generator):
                restore_generator_state(seed, seed_state)
        self._counters = [
            restore_counter(
                self.counter_name,
                horizon=self.horizon - index,
                rho=float(self.rho_per_threshold[index]),
                seed=self._row_seeds[index],
                noise_method=self.noise_method,
                payload=payloads[str(index)],
                counter_kwargs=self._counter_kwargs,
            )
            for index in range(len(payloads))
        ]

    def error_stddev(self, b: int, t: int) -> float:
        self._check_row(b)
        if b <= len(self._counters):
            return self._counters[b - 1].error_stddev(t)
        # Row not yet active: the bound is analytic, so a throwaway
        # instance (no noise is drawn) answers for it.
        from repro.streams.registry import make_counter

        probe = make_counter(
            self.counter_name,
            horizon=self.horizon - b + 1,
            rho=float(self.rho_per_threshold[b - 1]),
            seed=0,
            noise_method=self.noise_method,
            **self._counter_kwargs,
        )
        return probe.error_stddev(t)
