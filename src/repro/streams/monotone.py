"""Single-stream monotonization wrapper (Chan-Shi-Song consistency).

True running sums of a non-negative stream are non-decreasing, but noisy
estimates need not be.  :class:`MonotoneCounter` wraps any counter and
releases ``max`` of the wrapped outputs so far.  Chan, Shi & Song (2011,
§4.3) showed this clamping never increases the worst-case error — the
single-stream special case of the paper's Lemma 4.2 (which additionally
clamps *across* counters; that cross-counter version lives in
:mod:`repro.core.monotonize` because it needs all thresholds at once).

Monotonization is pure post-processing, so the privacy guarantee is that of
the wrapped counter.
"""

from __future__ import annotations

from repro.streams.base import StreamCounter

__all__ = ["MonotoneCounter"]


class MonotoneCounter(StreamCounter):
    """Clamp a wrapped counter's outputs to be non-decreasing."""

    def __init__(self, inner: StreamCounter):
        super().__init__(
            inner.horizon,
            inner.rho,
            seed=inner._generator,
            noise_method=inner.noise_method,
        )
        self.inner = inner
        self._last = float("-inf")

    def _feed(self, z: int) -> float:
        raw = self.inner.feed(z)
        self._last = max(self._last, raw)
        return self._last

    def _state_payload(self) -> dict:
        # The wrapper owns two pieces of state the base class cannot see:
        # the running maximum and the wrapped counter (whose clock and
        # buffers must resume too, or the restored stream diverges).
        return {"last": self._last, "inner": self.inner.state_dict()}

    def _load_payload(self, payload: dict) -> None:
        self._last = float(payload["last"])
        self.inner.load_state(payload["inner"])

    def error_stddev(self, t: int) -> float:
        """Clamping does not increase worst-case error (Lemma 4.2)."""
        return self.inner.error_stddev(t)
