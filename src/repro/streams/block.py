"""Two-level square-root-decomposition stream counter.

Splits the horizon into blocks of ``ceil(sqrt(T))`` steps.  Each element is
measured twice: once as a per-step singleton inside its block, and once in
the completed block total — so per-node variance ``1 / rho`` suffices for
``rho``-zCDP.  The prefix estimate sums the completed noisy block totals
plus the noisy singletons of the open block: at most
``t / B + B ≈ 2 sqrt(T)`` noise terms, giving error ``O(T^(1/4) / sqrt(rho))``.

Asymptotically this sits between :class:`SimpleCounter` (``sqrt(T)``) and
the tree counter (``polylog T``), but its constants win for very small
horizons — exactly the regime of the paper's monthly surveys (``T = 12``) —
which is why the counter ablation (`abl-counter`) includes it.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.dp.discrete_gaussian import DiscreteGaussianSampler
from repro.streams.base import StreamCounter

__all__ = ["BlockCounter"]


class BlockCounter(StreamCounter):
    """Square-root block decomposition with discrete Gaussian noise."""

    def __init__(self, horizon, rho, seed=None, noise_method="exact", block_size=None):
        super().__init__(horizon, rho, seed=seed, noise_method=noise_method)
        if block_size is None:
            block_size = max(1, math.isqrt(self.horizon - 1) + 1)
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.block_size = int(block_size)
        if self.noiseless:
            self.sigma_sq = Fraction(0)
        else:
            # Each element sits in exactly 2 noisy nodes (its singleton and
            # its block total): 2 * 1/(2 sigma^2) = rho.
            self.sigma_sq = Fraction(1) / Fraction(self.rho).limit_denominator(10**9)
        self._sampler = DiscreteGaussianSampler(
            self.sigma_sq, seed=self._generator, method=self.noise_method
        )
        self._closed_blocks_noisy = 0  # sum of noisy totals of completed blocks
        self._open_block_true = 0  # exact sum of the open block
        self._open_singletons_noisy = 0  # sum of noisy singletons in open block

    def _feed(self, z: int) -> float:
        self._open_block_true += z
        self._open_singletons_noisy += z + self._sampler.sample()
        estimate = self._closed_blocks_noisy + self._open_singletons_noisy
        if self._t % self.block_size == 0:
            # Block boundary: release the block total and reset the open block.
            self._closed_blocks_noisy += self._open_block_true + self._sampler.sample()
            self._open_block_true = 0
            self._open_singletons_noisy = 0
        return float(estimate)

    def _state_payload(self) -> dict:
        return {
            "closed_blocks_noisy": int(self._closed_blocks_noisy),
            "open_block_true": int(self._open_block_true),
            "open_singletons_noisy": int(self._open_singletons_noisy),
        }

    def _load_payload(self, payload: dict) -> None:
        self._closed_blocks_noisy = int(payload["closed_blocks_noisy"])
        self._open_block_true = int(payload["open_block_true"])
        self._open_singletons_noisy = int(payload["open_singletons_noisy"])

    def error_stddev(self, t: int) -> float:
        if t <= 0:
            return 0.0
        closed = t // self.block_size
        open_steps = t % self.block_size
        if open_steps == 0 and closed > 0:
            # At a block boundary the estimate was produced from the block's
            # singletons (the boundary release happens after reporting).
            closed -= 1
            open_steps = self.block_size
        n_terms = closed + open_steps
        return math.sqrt(n_terms * float(self.sigma_sq))
