"""Tree counter with Honaker's variance-optimal bottom-up refinement.

Honaker (2015, "Efficient Use of Differentially Private Binary Trees")
observed that the noisy binary tree is redundant: an internal node's value is
measured directly *and* implied by the sum of its children.  Combining the
two estimators with inverse-variance weights strictly reduces the variance of
every node estimate, and the refinement is pure post-processing of the noisy
node values, so privacy is unchanged.

Unlike :class:`~repro.streams.binary_tree.BinaryTreeCounter`, which only
measures a node when it completes (folding unfinished levels without their
own noise), this counter measures **every** dyadic node — leaves included —
when its interval completes.  Each stream element then appears in exactly one
node per level, so the per-node variance is the same ``L / (2 rho)`` as the
plain tree, while the refined prefix estimates are strictly better.  This is
the first of the "improved stream counters" the paper's §1.1 suggests
plugging into Algorithm 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.dp.discrete_gaussian import DiscreteGaussianSampler
from repro.streams.base import StreamCounter
from repro.streams.binary_tree import _lowest_set_bit

__all__ = ["HonakerCounter"]


@dataclass
class _Node:
    """A completed dyadic node awaiting its parent."""

    true_sum: int
    estimate: float
    variance: float


class HonakerCounter(StreamCounter):
    """Binary tree counter with bottom-up inverse-variance refinement.

    The ``pending`` buffer holds, per level, the refined estimate of the
    completed node whose parent has not completed yet.  At any time ``t``
    the non-empty buffers tile ``[1, t]`` exactly (they are the dyadic
    decomposition of the prefix), so the prefix estimate is simply their
    sum.
    """

    def __init__(self, horizon, rho, seed=None, noise_method="exact"):
        super().__init__(horizon, rho, seed=seed, noise_method=noise_method)
        self.levels = max(int(self.horizon).bit_length(), 1)
        if self.noiseless:
            self.sigma_sq = Fraction(0)
        else:
            self.sigma_sq = Fraction(self.levels) / Fraction(2 * self.rho).limit_denominator(
                10**9
            )
        self._sampler = DiscreteGaussianSampler(
            self.sigma_sq, seed=self._generator, method=self.noise_method
        )
        self._pending: list[_Node | None] = [None] * (self.levels + 1)

    def _measure(self, true_sum: int) -> float:
        return float(true_sum + self._sampler.sample())

    def _feed(self, z: int) -> float:
        t = self._t
        sigma_sq = float(self.sigma_sq)
        # Leaf node for time t: its own fresh measurement.
        cur = _Node(true_sum=z, estimate=self._measure(z), variance=sigma_sq)
        # Every level j <= lowest_set_bit(t) completes at time t; combine the
        # stored left sibling with the freshly refined right child, measure
        # the parent directly, and fuse the two estimators.
        for j in range(_lowest_set_bit(t)):
            left = self._pending[j]
            assert left is not None, "dyadic bookkeeping out of sync"
            self._pending[j] = None
            node_true = left.true_sum + cur.true_sum
            direct = self._measure(node_true)
            bottom_est = left.estimate + cur.estimate
            bottom_var = left.variance + cur.variance
            if sigma_sq == 0:
                fused_est, fused_var = float(node_true), 0.0
            else:
                weight_direct = (1.0 / sigma_sq) / (1.0 / sigma_sq + 1.0 / bottom_var)
                fused_est = weight_direct * direct + (1.0 - weight_direct) * bottom_est
                fused_var = 1.0 / (1.0 / sigma_sq + 1.0 / bottom_var)
            cur = _Node(true_sum=node_true, estimate=fused_est, variance=fused_var)
        self._pending[_lowest_set_bit(t)] = cur
        return math.fsum(node.estimate for node in self._pending if node is not None)

    def _state_payload(self) -> dict:
        return {
            "pending": [
                None
                if node is None
                else [int(node.true_sum), float(node.estimate), float(node.variance)]
                for node in self._pending
            ],
        }

    def _load_payload(self, payload: dict) -> None:
        self._pending = [
            None if entry is None else _Node(int(entry[0]), float(entry[1]), float(entry[2]))
            for entry in payload["pending"]
        ]

    def node_variance(self, level: int) -> float:
        """Refined variance of a completed node at the given level.

        Level-0 nodes keep the raw variance ``sigma^2``; every level above
        satisfies ``v_j = 1 / (1/sigma^2 + 1/(2 v_{j-1}))``, which converges
        to ``sigma^2 * (sqrt(2) - 1) * ...`` — strictly below ``sigma^2``.
        """
        sigma_sq = float(self.sigma_sq)
        if sigma_sq == 0:
            return 0.0
        variance = sigma_sq
        for _ in range(level):
            variance = 1.0 / (1.0 / sigma_sq + 1.0 / (2.0 * variance))
        return variance

    def error_stddev(self, t: int) -> float:
        """Stddev of the prefix estimate: sum of refined node variances."""
        if t <= 0:
            return 0.0
        total = 0.0
        for j in range(self.levels + 1):
            if t >> j & 1:
                total += self.node_variance(j)
        return math.sqrt(total)
