"""Square-root matrix-factorization counter (Fichtenberger et al. 2022).

Continual counting releases ``A z`` where ``A`` is the ``T x T`` lower-
triangular all-ones matrix.  Any factorization ``A = B C`` yields the
mechanism ``A z + B xi`` with ``xi ~ N(0, sigma^2 I)`` and
``sigma^2 = max_col_norm(C)^2 / (2 rho)`` for ``rho``-zCDP.  The
"constant matters" paper shows the square-root factorization
``B = C = A^(1/2)`` is near-optimal: ``A^(1/2)`` is lower-triangular
Toeplitz with coefficients

    f_0 = 1,   f_k = f_{k-1} * (2k - 1) / (2k)

(the absolute values of the binomial series of ``(1 - x)^(-1/2)``).  Every
column has the same norm ``sqrt(sum_k f_k^2)``, which grows like
``(1/pi) * ln T`` — better constants than the binary tree for moderate
``T``, and the error stddev is *identical at every time step* rather than
oscillating with ``popcount(t)``.

The noise here is continuous Gaussian (the factorization has irrational
entries, so integer-valued noise cannot be carried through ``B`` exactly);
estimates are therefore floats.  Algorithm 2 rounds counter outputs to
integers before monotonizing, so this counter drops in wherever the tree
counter does.
"""

from __future__ import annotations

import math

import numpy as np

from repro.streams.base import StreamCounter

__all__ = ["SqrtFactorizationCounter", "sqrt_factorization_coefficients"]


def sqrt_factorization_coefficients(length: int) -> np.ndarray:
    """First ``length`` Toeplitz coefficients of ``A^(1/2)``.

    ``f_0 = 1`` and ``f_k = f_{k-1} (2k-1)/(2k)``; equivalently
    ``f_k = binom(2k, k) / 4^k``.
    """
    if length <= 0:
        return np.zeros(0, dtype=np.float64)
    coeffs = np.empty(length, dtype=np.float64)
    coeffs[0] = 1.0
    for k in range(1, length):
        coeffs[k] = coeffs[k - 1] * (2 * k - 1) / (2 * k)
    return coeffs


class SqrtFactorizationCounter(StreamCounter):
    """Continual counter using the ``A^(1/2) A^(1/2)`` factorization."""

    def __init__(self, horizon, rho, seed=None, noise_method="exact"):
        super().__init__(horizon, rho, seed=seed, noise_method=noise_method)
        self._coeffs = sqrt_factorization_coefficients(self.horizon)
        col_norm_sq = float(np.sum(self._coeffs**2))
        if self.noiseless:
            self.sigma_sq = 0.0
        else:
            self.sigma_sq = col_norm_sq / (2.0 * self.rho)
        # xi_j drawn lazily, one per time step; the correlated noise at time
        # t is sum_j f_{t-j} xi_j, i.e. a dot product with the reversed
        # coefficient prefix.
        self._xi: list[float] = []

    def _feed(self, z: int) -> float:
        if self.sigma_sq == 0:
            self._xi.append(0.0)
            return float(self._true_sum)
        self._xi.append(float(self._generator.normal(0.0, math.sqrt(self.sigma_sq))))
        t = self._t
        xi = np.asarray(self._xi)
        correlated = float(np.dot(self._coeffs[:t][::-1], xi))
        return self._true_sum + correlated

    def _state_payload(self) -> dict:
        return {"xi": [float(x) for x in self._xi]}

    def _load_payload(self, payload: dict) -> None:
        self._xi = [float(x) for x in payload["xi"]]

    def error_stddev(self, t: int) -> float:
        """Stddev at ``t``: ``sigma * ||f_{0..t-1}||_2`` (same for all t≈T)."""
        if t <= 0 or self.sigma_sq == 0:
            return 0.0
        prefix_norm_sq = float(np.sum(self._coeffs[:t] ** 2))
        return math.sqrt(self.sigma_sq * prefix_norm_sq)
