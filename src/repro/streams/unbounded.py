"""Stream counting without a known horizon (open-ended studies).

The paper's model fixes a known horizon ``T`` — reasonable for a yearly
survey wave, but long-running longitudinal programs (the SIPP itself has
run since 1983) may not want to commit to one.  This module extends the
counter substrate to unbounded streams with the classic doubling trick:

* time is split into disjoint segments ``[2^i, 2^{i+1})``;
* each segment gets its own fresh :class:`BinaryTreeCounter` with horizon
  ``2^i`` and the **full** budget ``rho`` — changing one stream element
  touches exactly one segment, so by parallel composition over disjoint
  data segments the entire unbounded output sequence is ``rho``-zCDP;
* the running total at time ``t`` sums the finished segments' final
  estimates plus the open segment's prefix estimate.

The error at time ``t`` grows like ``O(log^{3/2}(t) / sqrt(rho))`` — the
price of never fixing ``T`` (a known-horizon tree counter pays
``O(log(T)/sqrt(rho))``).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import SeedLike, as_generator
from repro.streams.binary_tree import BinaryTreeCounter

__all__ = ["UnknownHorizonCounter"]


class UnknownHorizonCounter:
    """``rho``-zCDP running-sum estimator for streams of unknown length.

    Mirrors the :class:`~repro.streams.base.StreamCounter` interface
    (``feed`` / ``run`` / ``error_stddev``) but never exhausts: segments are
    spawned on demand.
    """

    def __init__(self, rho: float, seed: SeedLike = None, noise_method: str = "exact"):
        if not rho > 0:
            raise ConfigurationError(f"rho must be positive (or math.inf), got {rho}")
        self.rho = float(rho)
        self.noise_method = noise_method
        self._generator = as_generator(seed)
        self._t = 0
        self._true_sum = 0
        self._closed_total = 0.0  # sum of finished segments' final estimates
        self._segment: BinaryTreeCounter | None = None
        self._segment_index = -1
        self._segment_used = 0
        self._segment_last = 0.0

    @property
    def t(self) -> int:
        """Number of stream elements consumed so far."""
        return self._t

    @property
    def true_sum(self) -> int:
        """The exact running sum (internal state, not a private output)."""
        return self._true_sum

    def _open_next_segment(self) -> None:
        self._segment_index += 1
        length = 1 << self._segment_index
        self._segment = BinaryTreeCounter(
            length,
            self.rho,
            seed=self._generator,
            noise_method=self.noise_method,
        )
        self._segment_used = 0
        self._segment_last = 0.0

    def feed(self, z: int) -> float:
        """Consume one element and return the noisy running sum."""
        z = int(z)
        if z < 0:
            raise ConfigurationError(f"stream elements must be non-negative, got {z}")
        if self._segment is None or self._segment_used >= self._segment.horizon:
            if self._segment is not None:
                self._closed_total += self._segment_last
            self._open_next_segment()
        self._t += 1
        self._true_sum += z
        self._segment_used += 1
        self._segment_last = self._segment.feed(z)
        return self._closed_total + self._segment_last

    def run(self, stream: Iterable[int]) -> np.ndarray:
        """Feed an entire stream; return the vector of noisy prefix sums."""
        return np.array([self.feed(z) for z in stream], dtype=np.float64)

    def error_stddev(self, t: int) -> float:
        """Predicted error stddev at time ``t``.

        Sums the final-estimate variances of the ``floor(log2(t))`` closed
        segments plus the worst within-segment prefix variance of the open
        one.
        """
        if t <= 0 or math.isinf(self.rho):
            return 0.0
        variance = 0.0
        remaining = t
        index = 0
        while remaining > 0:
            length = 1 << index
            reference = BinaryTreeCounter(length, self.rho)
            used = min(length, remaining)
            variance += reference.error_stddev(used) ** 2
            remaining -= used
            index += 1
        return math.sqrt(variance)

    def __repr__(self) -> str:
        return (
            f"UnknownHorizonCounter(rho={self.rho}, t={self._t}, "
            f"segments={self._segment_index + 1})"
        )
