"""Differentially private stream counters (continual-release substrate).

A *stream counter* consumes a stream ``z_1, z_2, ..., z_T`` of natural
numbers and releases, at every time step, a private estimate of the running
sum ``S_t = z_1 + ... + z_t``.  Neighboring streams differ by at most 1 in a
single entry (Appendix A of the paper).  Algorithm 2 of the paper is generic
over this primitive: it runs one counter per Hamming-weight threshold ``b``.

Implementations:

* :class:`BinaryTreeCounter` — the classic tree-based aggregation mechanism
  (paper Algorithm 3; Dwork-Naor-Pitassi-Rothblum 2010, Chan-Shi-Song 2011).
* :class:`SimpleCounter` — fresh noise on every prefix sum; the naive
  ``sqrt(T)``-error baseline that motivates tree aggregation.
* :class:`HonakerCounter` — tree aggregation with Honaker's (2015)
  variance-optimal bottom-up refinement, a strictly better post-processing
  of the same noisy tree (paper §1.1 cites this line of work, [32]).
* :class:`SqrtFactorizationCounter` — the square-root matrix factorization
  of Fichtenberger, Henzinger & Upadhyay (2022) ("constant matters", [26]),
  with continuous Gaussian noise.
* :class:`BlockCounter` — two-level ``sqrt(T)`` decomposition; a simple
  middle ground with better constants than the tree for tiny ``T``.
* :class:`LaplaceTreeCounter` — the pure-DP tree variant with discrete
  Laplace noise (converted into zCDP accounting via ``eps^2 / 2``).
* :class:`MonotoneCounter` — wrapper enforcing non-decreasing outputs
  (single-stream consistency of Chan-Shi-Song §4).

Counters exist in two execution forms.  The classes above are the
*scalar* form — one Python object per stream.  The :mod:`~repro.streams.bank`
module provides the *vectorized* form: a :class:`CounterBank` advances all
``T`` per-threshold counters of Algorithm 2 in lockstep as one batched
NumPy state machine (native banks for the tree, Laplace-tree, simple, and
square-root-factorization counters; :class:`FallbackBank` wraps everything
else).  Both forms are selected by name through
:mod:`~repro.streams.registry`, produce identical noiseless outputs under
the same seeds, and serialize via ``state_dict()`` / ``load_state()`` for
the :mod:`repro.serve` checkpoint layer.
"""

from repro.streams.bank import (
    BinaryTreeBank,
    CounterBank,
    FallbackBank,
    LaplaceTreeBank,
    SimpleBank,
    SqrtFactorizationBank,
)
from repro.streams.base import CounterAccuracy, StreamCounter
from repro.streams.binary_tree import BinaryTreeCounter
from repro.streams.block import BlockCounter
from repro.streams.honaker import HonakerCounter
from repro.streams.laplace_tree import LaplaceTreeCounter
from repro.streams.monotone import MonotoneCounter
from repro.streams.registry import (
    available_banks,
    available_counters,
    make_bank,
    make_counter,
    register_bank,
    register_counter,
)
from repro.streams.simple import SimpleCounter
from repro.streams.sqrt_factorization import SqrtFactorizationCounter
from repro.streams.unbounded import UnknownHorizonCounter

__all__ = [
    "UnknownHorizonCounter",
    "StreamCounter",
    "CounterAccuracy",
    "BinaryTreeCounter",
    "SimpleCounter",
    "HonakerCounter",
    "SqrtFactorizationCounter",
    "BlockCounter",
    "LaplaceTreeCounter",
    "MonotoneCounter",
    "CounterBank",
    "BinaryTreeBank",
    "SimpleBank",
    "SqrtFactorizationBank",
    "LaplaceTreeBank",
    "FallbackBank",
    "make_counter",
    "register_counter",
    "available_counters",
    "make_bank",
    "register_bank",
    "available_banks",
]
