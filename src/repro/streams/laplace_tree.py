"""Pure-DP tree counter with discrete Laplace noise.

The paper's Appendix A notes: "the tree-based aggregation algorithm was
initially described using Laplace noise, resulting [in] a pure (eps, 0)-DP
algorithm [21, 15]."  This counter reproduces that variant: per-node
discrete Laplace noise with scale ``L / eps`` gives ``eps``-DP for the whole
output sequence (each element touches at most ``L`` noisy nodes, each a
sensitivity-1 release at ``eps / L``).

To slot into Algorithm 2's zCDP accounting, the constructor takes ``rho``
like every other counter and converts via the standard implication
``eps``-DP ⟹ ``(eps^2 / 2)``-zCDP, i.e. ``eps = sqrt(2 rho)``; the counter
then satisfies *both* ``sqrt(2 rho)``-pure-DP and ``rho``-zCDP.  Use
:meth:`from_epsilon` to parameterize by the pure-DP budget directly.

Laplace noise has heavier tails than the discrete Gaussian at the same zCDP
level, so this counter generally loses the accuracy comparison
(`abl-counter` quantifies by how much) — the price of the stronger pure-DP
guarantee.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.dp.discrete_laplace import DiscreteLaplaceSampler
from repro.exceptions import ConfigurationError
from repro.streams.base import StreamCounter
from repro.streams.binary_tree import _lowest_set_bit

__all__ = ["LaplaceTreeCounter"]


class LaplaceTreeCounter(StreamCounter):
    """Binary-tree counter with per-node discrete Laplace noise (pure DP).

    Attributes
    ----------
    epsilon:
        The pure-DP guarantee of the whole output sequence
        (``sqrt(2 rho)`` when constructed from a zCDP budget).
    levels:
        Number of dyadic levels ``L``.
    scale:
        Per-node Laplace scale ``L / epsilon``.
    """

    def __init__(self, horizon, rho, seed=None, noise_method="exact"):
        super().__init__(horizon, rho, seed=seed, noise_method=noise_method)
        self.levels = max(int(self.horizon).bit_length(), 1)
        if self.noiseless:
            self.epsilon = math.inf
            self.scale = Fraction(0)
        else:
            self.epsilon = math.sqrt(2.0 * self.rho)
            self.scale = Fraction(self.levels) / Fraction(self.epsilon).limit_denominator(
                10**9
            )
        self._sampler = (
            None
            if self.scale == 0
            else DiscreteLaplaceSampler(
                self.scale, seed=self._generator, method=self.noise_method
            )
        )
        self._alpha = [0] * self.levels
        self._alpha_noisy = [0] * self.levels

    @classmethod
    def from_epsilon(
        cls, horizon: int, epsilon: float, seed=None, noise_method="exact"
    ) -> "LaplaceTreeCounter":
        """Construct from a pure-DP budget ``epsilon`` directly."""
        if not epsilon > 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        return cls(horizon, epsilon**2 / 2.0, seed=seed, noise_method=noise_method)

    def _noise(self) -> int:
        return 0 if self._sampler is None else self._sampler.sample()

    def _feed(self, z: int) -> float:
        t = self._t
        i = _lowest_set_bit(t)
        self._alpha[i] = sum(self._alpha[:i]) + z
        for j in range(i):
            self._alpha[j] = 0
            self._alpha_noisy[j] = 0
        self._alpha_noisy[i] = self._alpha[i] + self._noise()
        estimate = 0
        for j in range(self.levels):
            if t >> j & 1:
                estimate += self._alpha_noisy[j]
        return float(estimate)

    def _state_payload(self) -> dict:
        return {
            "alpha": [int(a) for a in self._alpha],
            "alpha_noisy": [int(a) for a in self._alpha_noisy],
        }

    def _load_payload(self, payload: dict) -> None:
        self._alpha = [int(a) for a in payload["alpha"]]
        self._alpha_noisy = [int(a) for a in payload["alpha_noisy"]]

    def error_stddev(self, t: int) -> float:
        """``sqrt(popcount(t) * Var(Lap_Z(scale)))``."""
        if t <= 0 or self._sampler is None:
            return 0.0
        nodes = bin(t).count("1")
        return math.sqrt(nodes * self._sampler.variance)
