"""Contiguous array arenas for per-shard state.

The counter banks and the window engine each hold a small family of state
arrays that are allocated, checkpointed, and (for the sharded service)
shipped between processes *together*.  An :class:`ArrayArena` carves every
array of such a family out of **one** contiguous backing buffer:

* a *local* arena backs the views with a single heap allocation, so the
  family is cache-adjacent and can be snapshotted or hashed as one block;
* a *shared* arena backs them with a
  :class:`multiprocessing.shared_memory.SharedMemory` segment, so a
  process-strategy shard executor can expose the same state to a worker
  process zero-copy — the worker attaches by name and sees the identical
  layout.

Layouts are declared as ``(key, shape, dtype[, order])`` specs; 2-D+
state (the window engine's histogram block, the banks' level buffers) is
typically declared column-major (``order="F"``) so per-round column
access touches one contiguous run of the buffer.  Offsets are aligned to
:data:`ALIGNMENT` bytes, which keeps every view SIMD-friendly regardless
of what precedes it.

The arena is deliberately dumb: it neither grows nor reallocates.  Callers
that outgrow a layout (``CounterBank.extend_rows``) build a new arena for
the grown shapes and copy the old views across — exactly what they
previously did with free-floating ``np.zeros`` allocations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["ALIGNMENT", "ArrayArena"]

#: Byte alignment of every array inside an arena (one x86-64 cache line,
#: and enough for any current SIMD width numpy dispatches to).
ALIGNMENT = 64

_ORDERS = ("C", "F")


def _parse_specs(specs) -> list[tuple[str, tuple, np.dtype, str]]:
    parsed: list[tuple[str, tuple, np.dtype, str]] = []
    seen: set[str] = set()
    for spec in specs:
        try:
            key, shape, dtype = spec[0], spec[1], spec[2]
            order = spec[3] if len(spec) > 3 else "C"
        except (TypeError, IndexError) as exc:
            raise ConfigurationError(
                f"arena specs must be (key, shape, dtype[, order]) tuples, "
                f"got {spec!r}"
            ) from exc
        if not isinstance(key, str) or not key:
            raise ConfigurationError(f"arena keys must be non-empty strings, got {key!r}")
        if key in seen:
            raise ConfigurationError(f"duplicate arena key {key!r}")
        seen.add(key)
        if order not in _ORDERS:
            raise ConfigurationError(f"order must be 'C' or 'F', got {order!r}")
        shape = tuple(int(extent) for extent in np.atleast_1d(np.asarray(shape)))
        if any(extent < 0 for extent in shape):
            raise ConfigurationError(f"array {key!r} has negative shape {shape}")
        parsed.append((key, shape, np.dtype(dtype), order))
    return parsed


class ArrayArena:
    """Named NumPy arrays carved out of one contiguous backing buffer.

    Parameters
    ----------
    specs:
        Iterable of ``(key, shape, dtype)`` or ``(key, shape, dtype,
        order)`` tuples declaring the layout, in buffer order.  ``order``
        is ``"C"`` (default) or ``"F"`` (column-major — the natural layout
        for per-round column access into 2-D state blocks).
    shared:
        Back the buffer with a POSIX shared-memory segment instead of a
        private heap allocation, so another process can attach the same
        state zero-copy (see ``name``).
    name:
        Only with ``shared=True``: attach to an *existing* segment of
        this name (created by another arena, typically in another
        process) instead of creating a fresh one.  The attaching side
        must declare the identical layout.

    Raises
    ------
    repro.exceptions.ConfigurationError
        On malformed specs, duplicate keys, a ``name`` without
        ``shared=True``, or an attached segment too small for the layout.

    Notes
    -----
    Freshly created buffers are zero-filled (both backends), matching the
    ``np.zeros`` allocations the arena replaces.  A shared arena owns its
    segment only when it created it: :meth:`close` detaches either way,
    :meth:`unlink` removes the segment and is the creator's job.
    """

    def __init__(self, specs, *, shared: bool = False, name: str | None = None):
        if name is not None and not shared:
            raise ConfigurationError("name= requires shared=True")
        self._specs = _parse_specs(specs)
        offset = 0
        placed: list[tuple[str, tuple, np.dtype, str, int]] = []
        for key, shape, dtype, order in self._specs:
            offset = ALIGNMENT * math.ceil(offset / ALIGNMENT)
            placed.append((key, shape, dtype, order, offset))
            offset += dtype.itemsize * math.prod(shape)
        self.nbytes = offset
        self._owns_segment = False
        if shared:
            from multiprocessing import shared_memory

            if name is None:
                self._shm = shared_memory.SharedMemory(
                    create=True, size=max(self.nbytes, 1)
                )
                self._owns_segment = True
                # A fresh segment's content is not guaranteed zeroed on
                # every platform; make the zero-fill contract explicit.
                self._shm.buf[: self.nbytes] = bytes(self.nbytes)
            else:
                self._shm = shared_memory.SharedMemory(name=name)
                if self._shm.size < self.nbytes:
                    self._shm.close()
                    raise ConfigurationError(
                        f"shared segment {name!r} holds {self._shm.size} bytes; "
                        f"the declared layout needs {self.nbytes}"
                    )
            buffer, base = self._shm.buf, 0
        else:
            self._shm = None
            # Over-allocate so the first view can start on an ALIGNMENT
            # boundary even though np.zeros only promises ~16-byte bases.
            raw = np.zeros(self.nbytes + ALIGNMENT, dtype=np.uint8)
            address = raw.__array_interface__["data"][0]
            base = (-address) % ALIGNMENT
            buffer = raw
        self._views = {
            key: np.ndarray(
                shape, dtype=dtype, buffer=buffer, offset=base + off, order=order
            )
            for key, shape, dtype, order, off in placed
        }

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def name(self) -> str | None:
        """The shared segment's name (``None`` for a local arena)."""
        return None if self._shm is None else self._shm.name

    @property
    def shared(self) -> bool:
        """Whether the buffer lives in a shared-memory segment."""
        return self._shm is not None

    def keys(self) -> list[str]:
        """The layout's array keys, in buffer order."""
        return [key for key, _, _, _ in self._specs]

    def __getitem__(self, key: str) -> np.ndarray:
        """The named array view (backed by the arena buffer, writable)."""
        try:
            return self._views[key]
        except KeyError:
            raise ConfigurationError(
                f"arena has no array {key!r}; layout holds {self.keys()}"
            ) from None

    def __contains__(self, key: str) -> bool:
        return key in self._views

    def arrays(self) -> dict[str, np.ndarray]:
        """All views as a ``{key: array}`` mapping (shared, not copies)."""
        return dict(self._views)

    # ------------------------------------------------------------------
    # Lifecycle (shared backend)
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop the views and detach from a shared segment.

        After closing, the arena's arrays are unusable.  No-op for local
        arenas beyond releasing the views.
        """
        self._views = {}
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Remove the shared segment from the system (creator's job).

        Implies :meth:`close`.  No-op for local arenas and for arenas
        that merely attached to a foreign segment.
        """
        shm = self._shm
        owns = self._owns_segment
        self.close()
        if shm is not None and owns:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already removed
                pass

    def __repr__(self) -> str:
        backend = f"shared:{self.name}" if self.shared else "local"
        return (
            f"ArrayArena({len(self._specs)} arrays, {self.nbytes} bytes, "
            f"{backend})"
        )
