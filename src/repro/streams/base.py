"""Abstract base class and accuracy contract for DP stream counters."""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.exceptions import ConfigurationError, SerializationError, StreamLengthError
from repro.rng import SeedLike, as_generator, generator_state, restore_generator_state

__all__ = ["StreamCounter", "CounterAccuracy"]


@dataclass(frozen=True)
class CounterAccuracy:
    """An ``(alpha, beta)`` accuracy statement for a stream counter.

    With probability at least ``1 - beta`` the counter's error satisfies
    ``|S~_t - S_t| <= alpha`` at any fixed time ``t`` (Definition A.1).  The
    ``alpha`` here is in *counts*, not fractions.
    """

    alpha: float
    beta: float


class StreamCounter(abc.ABC):
    """A ``rho``-zCDP estimator of running sums of a natural-number stream.

    Subclasses implement :meth:`_feed` (consume one element, return the new
    noisy prefix-sum estimate).  The base class validates inputs, tracks the
    clock, and provides batch helpers.

    Parameters
    ----------
    horizon:
        Maximum number of elements the counter will accept (``T``).  Known in
        advance, as in the paper's model.
    rho:
        Total zCDP budget for the entire output sequence.  ``math.inf`` is
        accepted and yields a noiseless counter (useful as an oracle in tests
        and for the non-private baseline).
    seed:
        Seed or :class:`numpy.random.Generator` for the noise stream.
    noise_method:
        ``"exact"`` or ``"vectorized"`` — forwarded to the discrete Gaussian
        sampler where applicable.
    """

    def __init__(
        self,
        horizon: int,
        rho: float,
        seed: SeedLike = None,
        noise_method: str = "exact",
    ):
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if not (rho > 0):
            raise ConfigurationError(f"rho must be positive (or math.inf), got {rho}")
        if noise_method not in ("exact", "vectorized"):
            raise ConfigurationError(
                f"noise_method must be 'exact' or 'vectorized', got {noise_method!r}"
            )
        self.horizon = int(horizon)
        self.rho = float(rho)
        self.noise_method = noise_method
        self._generator = as_generator(seed)
        self._t = 0
        self._true_sum = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def t(self) -> int:
        """Number of stream elements consumed so far."""
        return self._t

    @property
    def true_sum(self) -> int:
        """The exact running sum (internal state; *not* a private output)."""
        return self._true_sum

    @property
    def noiseless(self) -> bool:
        """True when ``rho == inf`` and the counter adds no noise."""
        return math.isinf(self.rho)

    def feed(self, z: int) -> float:
        """Consume one stream element and return the noisy running sum."""
        z = int(z)
        if z < 0:
            raise ConfigurationError(f"stream elements must be non-negative, got {z}")
        if self._t >= self.horizon:
            raise StreamLengthError(
                f"counter with horizon {self.horizon} received element {self._t + 1}"
            )
        self._t += 1
        self._true_sum += z
        return self._feed(z)

    def run(self, stream: Iterable[int]) -> np.ndarray:
        """Feed an entire stream; return the vector of noisy prefix sums."""
        return np.array([self.feed(z) for z in stream], dtype=np.float64)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the counter's full mid-stream state.

        Returns
        -------
        dict
            JSON-safe dict with the counter class name, clock, exact
            running sum, the noise generator's bit-generator state, and a
            subclass-specific ``payload`` (tree buffers, correlated-noise
            history, ...).  Feeding a restored counter produces exactly
            the bit stream the original would have produced — the
            :mod:`repro.serve` checkpoint contract.
        """
        return {
            "type": type(self).__name__,
            "t": int(self._t),
            "true_sum": int(self._true_sum),
            "generator": generator_state(self._generator),
            "payload": self._state_payload(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict` in place.

        Parameters
        ----------
        state:
            A snapshot from a counter of the *same class* constructed with
            the same ``(horizon, rho, noise_method)`` configuration.

        Raises
        ------
        repro.exceptions.SerializationError
            If the snapshot names a different counter class or is
            structurally invalid.
        """
        if not isinstance(state, dict):
            raise SerializationError(
                f"counter state must be a dict, got {type(state).__name__}"
            )
        declared = state.get("type")
        if declared != type(self).__name__:
            raise SerializationError(
                f"counter state for {declared!r} cannot be loaded into "
                f"a {type(self).__name__}"
            )
        try:
            t = int(state["t"])
            true_sum = int(state["true_sum"])
            generator = state["generator"]
            payload = state["payload"]
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"invalid counter state: {exc}") from exc
        if not 0 <= t <= self.horizon:
            raise SerializationError(
                f"counter clock {t} outside [0, horizon={self.horizon}]"
            )
        # Load order: payload buffers, then the generator, then the clock.
        # A snapshot rejected at any step never leaves the counter with a
        # repositioned noise stream behind an unchanged clock — the
        # silent-divergence case; buffer edits before a *generator*
        # rejection are moot because that rejection is always loud.
        try:
            self._load_payload(payload)
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise SerializationError(f"invalid counter payload: {exc}") from exc
        restore_generator_state(self._generator, generator)
        self._t = t
        self._true_sum = true_sum

    def _state_payload(self) -> dict:
        """Subclass hook: extra JSON-safe state beyond the base fields."""
        return {}

    def _load_payload(self, payload: dict) -> None:
        """Subclass hook: restore what :meth:`_state_payload` captured."""

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _feed(self, z: int) -> float:
        """Consume element ``z`` (clock already advanced); return estimate."""

    @abc.abstractmethod
    def error_stddev(self, t: int) -> float:
        """Standard deviation of the estimate error at time ``t``.

        Used by :mod:`repro.analysis.theory` to draw bound lines and by the
        ablation benchmarks to compare counters analytically.
        """

    def accuracy(self, beta: float, t: int | None = None) -> CounterAccuracy:
        """Gaussian tail ``(alpha, beta)`` bound at time ``t`` (default T)."""
        if not 0 < beta < 1:
            raise ConfigurationError(f"beta must lie in (0, 1), got {beta}")
        t = self.horizon if t is None else t
        sd = self.error_stddev(t)
        alpha = sd * math.sqrt(2.0 * math.log(2.0 / beta))
        return CounterAccuracy(alpha=alpha, beta=beta)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(horizon={self.horizon}, rho={self.rho}, "
            f"t={self._t})"
        )
