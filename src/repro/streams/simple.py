"""The naive stream counter: fresh noise on every prefix sum.

Changing one stream element by 1 shifts every subsequent prefix sum by 1, so
releasing all ``T`` prefix sums with independent noise costs ``T`` Gaussian
releases of sensitivity 1: ``sigma^2 = T / (2 rho)`` for ``rho``-zCDP in
total.  The per-step error is therefore ``Theta(sqrt(T / rho))`` — the
``sqrt(T)`` baseline that the tree-based mechanism improves to polylog.
Included as the baseline for the counter ablation (`abl-counter`).
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.dp.discrete_gaussian import DiscreteGaussianSampler
from repro.streams.base import StreamCounter

__all__ = ["SimpleCounter"]


class SimpleCounter(StreamCounter):
    """Independent discrete Gaussian noise on each prefix sum."""

    def __init__(self, horizon, rho, seed=None, noise_method="exact"):
        super().__init__(horizon, rho, seed=seed, noise_method=noise_method)
        if self.noiseless:
            self._sigma_sq = Fraction(0)
        else:
            self._sigma_sq = Fraction(self.horizon) / Fraction(2 * self.rho).limit_denominator(
                10**9
            )
        self._sampler = DiscreteGaussianSampler(
            self._sigma_sq, seed=self._generator, method=self.noise_method
        )

    @property
    def sigma_sq(self) -> Fraction:
        """Noise variance used for every prefix-sum release."""
        return self._sigma_sq

    def _feed(self, z: int) -> float:
        return float(self._true_sum + self._sampler.sample())

    def error_stddev(self, t: int) -> float:
        return math.sqrt(float(self._sigma_sq))
