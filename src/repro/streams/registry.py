"""Name-based registries for stream counters and counter banks.

Algorithm 2 and the ablation benchmarks select counters by name so that
experiment configuration stays declarative (`counter="binary_tree"`).
Third-party counters can be plugged in with :func:`register_counter`.

The *bank* registry maps the same names to vectorized
:class:`~repro.streams.bank.CounterBank` implementations, which advance all
``T`` per-threshold counters as one batched NumPy state machine.  Names
without a native bank transparently fall back to
:class:`~repro.streams.bank.FallbackBank`, so every registered counter —
including third-party ones — works with ``engine="vectorized"``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Type

from repro.exceptions import ConfigurationError
from repro.streams.base import StreamCounter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.streams.bank import CounterBank

__all__ = [
    "register_counter",
    "make_counter",
    "restore_counter",
    "available_counters",
    "register_bank",
    "make_bank",
    "available_banks",
    "resolve_engine",
    "ENGINES",
]

_REGISTRY: dict[str, Type[StreamCounter]] = {}
_BANK_REGISTRY: dict[str, "Type[CounterBank]"] = {}

#: Counter-engine choices for Algorithm 2: the batched CounterBank or the
#: one-object-per-threshold scalar reference path.
ENGINES = ("vectorized", "scalar")


def resolve_engine(engine: str | None = None) -> str:
    """Resolve and validate a counter-engine choice.

    ``None`` consults the ``REPRO_ENGINE`` environment variable (so a CI
    job or sweep can flip *every* synthesizer in the process to the scalar
    reference path) and defaults to ``"vectorized"`` when it is unset.
    Unrecognized values — explicit or from the environment — raise instead
    of silently falling back: a typo like ``REPRO_ENGINE=sclar`` must not
    re-test the default engine while claiming to cover the other one.

    Parameters
    ----------
    engine:
        ``"vectorized"``, ``"scalar"``, or ``None`` (consult the
        environment, then default).

    Returns
    -------
    str
        The validated engine name.

    Raises
    ------
    repro.exceptions.ConfigurationError
        On any unrecognized value, explicit or environmental.
    """
    if engine is None:
        env = os.environ.get("REPRO_ENGINE", "").strip().lower()
        if not env:
            return "vectorized"
        if env not in ENGINES:
            raise ConfigurationError(
                f"REPRO_ENGINE must be one of {ENGINES}, got {env!r}"
            )
        return env
    if engine not in ENGINES:
        raise ConfigurationError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


def register_counter(name: str) -> Callable[[Type[StreamCounter]], Type[StreamCounter]]:
    """Class decorator registering a counter under ``name``.

    Parameters
    ----------
    name:
        Registry key, as passed to :func:`make_counter` and to
        ``CumulativeSynthesizer(counter=...)``.

    Returns
    -------
    callable
        The decorator; it returns the class unchanged after registering.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If the decorated class is not a
        :class:`~repro.streams.base.StreamCounter` subclass.
    """

    def decorator(cls: Type[StreamCounter]) -> Type[StreamCounter]:
        if not issubclass(cls, StreamCounter):
            raise ConfigurationError(f"{cls!r} is not a StreamCounter subclass")
        _REGISTRY[name] = cls
        return cls

    return decorator


def make_counter(name: str, horizon: int, rho: float, **kwargs) -> StreamCounter:
    """Instantiate a registered counter by name.

    Parameters
    ----------
    name:
        A key previously registered with :func:`register_counter` (see
        :func:`available_counters`).
    horizon:
        Maximum stream length the counter will accept.
    rho:
        Total zCDP budget for the counter's whole output sequence
        (``math.inf`` for a noiseless oracle).
    **kwargs:
        Forwarded to the counter constructor (``seed``,
        ``noise_method``, counter-specific knobs like ``block_size``).

    Returns
    -------
    StreamCounter
        A fresh counter at clock 0.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``name`` is not registered.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown counter {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(horizon, rho, **kwargs)


def restore_counter(
    name: str,
    *,
    horizon: int,
    rho: float,
    seed,
    noise_method: str,
    payload: dict,
    counter_kwargs: dict | None = None,
) -> StreamCounter:
    """Rebuild a counter from a checkpoint payload.

    The one place that knows how to reconstruct a registered counter and
    re-apply its serialized state — shared by the scalar engine
    (``CumulativeSynthesizer.load_state``) and the vectorized fallback
    bank so the two restore paths cannot drift.

    Parameters
    ----------
    name:
        Registered counter name.
    horizon:
        The counter's effective stream length.
    rho:
        The counter's zCDP budget.
    seed:
        The counter's noise generator (its bit state is overwritten by
        the payload's recorded state).
    noise_method:
        ``"exact"`` or ``"vectorized"``.
    payload:
        A snapshot from :meth:`repro.streams.base.StreamCounter.state_dict`.
    counter_kwargs:
        Counter-specific constructor knobs.

    Returns
    -------
    StreamCounter
        The counter, mid-stream, ready to continue byte-identically.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``name`` is not registered.
    repro.exceptions.SerializationError
        If the payload does not match the counter class.
    """
    counter = make_counter(
        name,
        horizon=horizon,
        rho=rho,
        seed=seed,
        noise_method=noise_method,
        **(counter_kwargs or {}),
    )
    counter.load_state(payload)
    return counter


def available_counters() -> tuple[str, ...]:
    """Names of all registered counters, sorted."""
    return tuple(sorted(_REGISTRY))


def register_bank(name: str) -> "Callable[[Type[CounterBank]], Type[CounterBank]]":
    """Class decorator registering a vectorized bank under a counter name.

    Parameters
    ----------
    name:
        The *counter* name the bank natively implements; ``make_bank``
        prefers it over the scalar-wrapping fallback for that name.

    Returns
    -------
    callable
        The decorator; it returns the class unchanged after registering.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If the decorated class is not a
        :class:`~repro.streams.bank.CounterBank` subclass.
    """
    from repro.streams.bank import CounterBank

    def decorator(cls: "Type[CounterBank]") -> "Type[CounterBank]":
        if not issubclass(cls, CounterBank):
            raise ConfigurationError(f"{cls!r} is not a CounterBank subclass")
        _BANK_REGISTRY[name] = cls
        return cls

    return decorator


def make_bank(
    name: str,
    horizon: int,
    rho_per_threshold,
    *,
    seeds=None,
    noise_method: str = "vectorized",
    n_reps: int = 1,
    counter_kwargs: dict | None = None,
) -> "CounterBank":
    """Instantiate the vectorized bank for counter ``name``.

    Uses the native batched implementation when one is registered and no
    counter-specific keyword arguments are requested; otherwise wraps the
    scalar counter in a :class:`~repro.streams.bank.FallbackBank` (native
    banks are calibrated from ``(horizon, rho_b)`` alone, so extra
    constructor knobs route through the scalar counters that define them).

    Parameters
    ----------
    name:
        A registered counter name (see :func:`available_counters`);
        :func:`available_banks` lists which have native banks.
    horizon:
        Global horizon ``T`` — the bank holds one row per threshold.
    rho_per_threshold:
        Length-``T`` per-row zCDP budgets.
    seeds:
        A single seed (spawned into per-row children) or an explicit
        length-``T`` sequence of per-row seeds.
    noise_method:
        ``"exact"`` or ``"vectorized"`` noise backend.
    n_reps:
        Number of independent replicas advanced in lockstep; values
        above 1 require a native bank (the fallback has no batched noise
        path and rejects them).
    counter_kwargs:
        Counter-specific constructor knobs; forces the fallback path.

    Returns
    -------
    CounterBank
        A fresh bank at global round 0.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``name`` is unknown, or ``n_reps > 1`` without a native bank.
    """
    from repro.streams.bank import FallbackBank

    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown counter {name!r}; available: {sorted(_REGISTRY)}"
        )
    cls = _BANK_REGISTRY.get(name)
    if cls is not None and not counter_kwargs:
        return cls(
            horizon, rho_per_threshold, seeds=seeds, noise_method=noise_method,
            n_reps=n_reps,
        )
    return FallbackBank(
        horizon,
        rho_per_threshold,
        seeds=seeds,
        noise_method=noise_method,
        n_reps=n_reps,
        counter=name,
        counter_kwargs=counter_kwargs,
    )


def available_banks() -> tuple[str, ...]:
    """Counter names with a *native* vectorized bank, sorted."""
    return tuple(sorted(_BANK_REGISTRY))


def _register_builtins() -> None:
    """Populate the registry with the built-in counters."""
    from repro.streams.binary_tree import BinaryTreeCounter
    from repro.streams.block import BlockCounter
    from repro.streams.honaker import HonakerCounter
    from repro.streams.laplace_tree import LaplaceTreeCounter
    from repro.streams.simple import SimpleCounter
    from repro.streams.sqrt_factorization import SqrtFactorizationCounter

    _REGISTRY.setdefault("binary_tree", BinaryTreeCounter)
    _REGISTRY.setdefault("simple", SimpleCounter)
    _REGISTRY.setdefault("honaker", HonakerCounter)
    _REGISTRY.setdefault("sqrt_factorization", SqrtFactorizationCounter)
    _REGISTRY.setdefault("block", BlockCounter)
    _REGISTRY.setdefault("laplace_tree", LaplaceTreeCounter)


def _register_builtin_banks() -> None:
    """Populate the bank registry with the native vectorized banks."""
    from repro.streams.bank import (
        BinaryTreeBank,
        LaplaceTreeBank,
        SimpleBank,
        SqrtFactorizationBank,
    )

    _BANK_REGISTRY.setdefault("binary_tree", BinaryTreeBank)
    _BANK_REGISTRY.setdefault("simple", SimpleBank)
    _BANK_REGISTRY.setdefault("sqrt_factorization", SqrtFactorizationBank)
    _BANK_REGISTRY.setdefault("laplace_tree", LaplaceTreeBank)


_register_builtins()
_register_builtin_banks()
