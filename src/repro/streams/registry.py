"""Name-based stream-counter registry.

Algorithm 2 and the ablation benchmarks select counters by name so that
experiment configuration stays declarative (`counter="binary_tree"`).
Third-party counters can be plugged in with :func:`register_counter`.
"""

from __future__ import annotations

from typing import Callable, Type

from repro.exceptions import ConfigurationError
from repro.streams.base import StreamCounter

__all__ = ["register_counter", "make_counter", "available_counters"]

_REGISTRY: dict[str, Type[StreamCounter]] = {}


def register_counter(name: str) -> Callable[[Type[StreamCounter]], Type[StreamCounter]]:
    """Class decorator registering a counter under ``name``."""

    def decorator(cls: Type[StreamCounter]) -> Type[StreamCounter]:
        if not issubclass(cls, StreamCounter):
            raise ConfigurationError(f"{cls!r} is not a StreamCounter subclass")
        _REGISTRY[name] = cls
        return cls

    return decorator


def make_counter(name: str, horizon: int, rho: float, **kwargs) -> StreamCounter:
    """Instantiate a registered counter by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown counter {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(horizon, rho, **kwargs)


def available_counters() -> tuple[str, ...]:
    """Names of all registered counters, sorted."""
    return tuple(sorted(_REGISTRY))


def _register_builtins() -> None:
    """Populate the registry with the built-in counters."""
    from repro.streams.binary_tree import BinaryTreeCounter
    from repro.streams.block import BlockCounter
    from repro.streams.honaker import HonakerCounter
    from repro.streams.laplace_tree import LaplaceTreeCounter
    from repro.streams.simple import SimpleCounter
    from repro.streams.sqrt_factorization import SqrtFactorizationCounter

    _REGISTRY.setdefault("binary_tree", BinaryTreeCounter)
    _REGISTRY.setdefault("simple", SimpleCounter)
    _REGISTRY.setdefault("honaker", HonakerCounter)
    _REGISTRY.setdefault("sqrt_factorization", SqrtFactorizationCounter)
    _REGISTRY.setdefault("block", BlockCounter)
    _REGISTRY.setdefault("laplace_tree", LaplaceTreeCounter)


_register_builtins()
