"""Tree-based aggregation — Algorithm 3 of the paper.

The stream is laid over the leaves of a complete binary tree; each internal
node holds the sum of the leaves below it and receives fresh discrete
Gaussian noise ``N_Z(0, L / (2 rho))``, where ``L`` is the number of dyadic
levels.  Every stream element is folded into at most ``L`` noisy nodes, so
the whole output sequence is ``rho``-zCDP by composition (Theorem A.1), and
every prefix sum is the sum of at most ``O(log t)`` noisy nodes, giving
error ``O(sqrt(log T * log t / rho))`` (Theorem A.2).

The paper writes the noise scale as ``log T / (2 rho)``; we instantiate the
logarithm as ``L = T.bit_length() = floor(log2 T) + 1``, the exact number of
dyadic levels that can complete within horizon ``T``, so the zCDP ledger is
tight for every ``T``, not only powers of two.

The implementation follows Algorithm 3's streaming form: ``alpha_j`` buffers
accumulate partial sums per level, a completed level folds all lower levels,
and the prefix estimate sums the noisy buffers selected by the binary
representation of ``t``.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.dp.discrete_gaussian import DiscreteGaussianSampler
from repro.streams.base import StreamCounter

__all__ = ["BinaryTreeCounter"]


def _lowest_set_bit(t: int) -> int:
    """Index of the least-significant 1 bit of ``t >= 1``."""
    return (t & -t).bit_length() - 1


class BinaryTreeCounter(StreamCounter):
    """The classic binary-tree (dyadic interval) counter.

    Attributes
    ----------
    levels:
        Number of dyadic levels ``L = floor(log2 T) + 1``.
    sigma_sq:
        Per-node noise variance ``L / (2 rho)``.
    """

    def __init__(self, horizon, rho, seed=None, noise_method="exact"):
        super().__init__(horizon, rho, seed=seed, noise_method=noise_method)
        self.levels = max(int(self.horizon).bit_length(), 1)
        if self.noiseless:
            self.sigma_sq = Fraction(0)
        else:
            self.sigma_sq = Fraction(self.levels) / Fraction(2 * self.rho).limit_denominator(
                10**9
            )
        self._sampler = DiscreteGaussianSampler(
            self.sigma_sq, seed=self._generator, method=self.noise_method
        )
        # alpha[j]: exact sum buffered at level j; alpha_noisy[j]: its noisy
        # release.  Both live until a higher level folds them.
        self._alpha = [0] * self.levels
        self._alpha_noisy = [0] * self.levels

    def _feed(self, z: int) -> float:
        t = self._t
        i = _lowest_set_bit(t)
        # Fold all lower levels plus the new element into level i.
        self._alpha[i] = sum(self._alpha[:i]) + z
        for j in range(i):
            self._alpha[j] = 0
            self._alpha_noisy[j] = 0
        self._alpha_noisy[i] = self._alpha[i] + self._sampler.sample()
        # The dyadic decomposition of [1, t] is exactly the set bits of t.
        estimate = 0
        for j in range(self.levels):
            if t >> j & 1:
                estimate += self._alpha_noisy[j]
        return float(estimate)

    def _state_payload(self) -> dict:
        return {
            "alpha": [int(a) for a in self._alpha],
            "alpha_noisy": [int(a) for a in self._alpha_noisy],
        }

    def _load_payload(self, payload: dict) -> None:
        self._alpha = [int(a) for a in payload["alpha"]]
        self._alpha_noisy = [int(a) for a in payload["alpha_noisy"]]

    def nodes_in_estimate(self, t: int) -> int:
        """Number of noisy nodes summed into the estimate at time ``t``."""
        if t <= 0:
            return 0
        return bin(t).count("1")

    def error_stddev(self, t: int) -> float:
        """Stddev of the estimate at ``t``: ``sqrt(popcount(t) * sigma^2)``."""
        return math.sqrt(self.nodes_in_estimate(t) * float(self.sigma_sq))
