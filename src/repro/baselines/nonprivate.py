"""Non-private oracle synthesizer.

Releases synthetic data equal in distribution to the raw panel (in fact,
the raw panel itself).  Used as the accuracy ceiling in comparisons and to
sanity-check experiment plumbing: every query answered on the oracle's
release must equal the ground truth exactly.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import LongitudinalDataset
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.queries.base import Query
from repro.queries.plan import scalar_answer_grid
from repro.types import AttributeFrame

__all__ = ["NonPrivateSynthesizer"]


class _OracleRelease:
    """Release view that evaluates queries on the raw panel."""

    def __init__(self, panel: LongitudinalDataset):
        self._panel = panel

    @property
    def t(self) -> int:
        """Rounds available."""
        return self._panel.horizon

    def synthetic_data(self, t: int | None = None) -> LongitudinalDataset:
        """The "synthetic" panel — the raw data itself."""
        return self._panel if t is None else self._panel.prefix(t)

    def answer(self, query: Query, t: int, debias: bool = True) -> float:
        """Ground-truth answer (``debias`` accepted for API compatibility)."""
        return query.evaluate(self._panel, t)

    def answer_batch(self, queries, times, debias: bool = True) -> np.ndarray:
        """Workload grid via the scalar fallback (already exact)."""
        return scalar_answer_grid(self, queries, times, debias=debias)


class NonPrivateSynthesizer:
    """Oracle: outputs the original records (no privacy whatsoever).

    Parameters
    ----------
    horizon:
        Known time horizon ``T`` (validated against the panel fed to
        ``run``).

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``horizon`` is not positive.
    """

    def __init__(self, horizon: int):
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        self.horizon = int(horizon)
        self._columns: list[np.ndarray] = []
        self._release: _OracleRelease | None = None

    @property
    def t(self) -> int:
        """Rounds observed so far (streaming mode only)."""
        return len(self._columns)

    @property
    def release(self) -> _OracleRelease:
        """The release view (after :meth:`run` or :meth:`observe`)."""
        if self._release is None:
            raise NotFittedError("run() has not been called")
        return self._release

    def observe(self, data, *, entrants: int = 0, exits=None) -> _OracleRelease:
        """Consume one round's reports; the oracle re-releases the prefix.

        Parameters
        ----------
        data:
            Length-``n`` 0/1 report vector, or a width-1
            :class:`~repro.types.AttributeFrame`.
        entrants, exits:
            Unsupported — the oracle tracks a fixed population.
        """
        if entrants or (exits is not None and np.asarray(exits).size):
            raise ConfigurationError(
                "NonPrivateSynthesizer does not support churn (entrants/exits)"
            )
        if isinstance(data, AttributeFrame):
            data = data.sole()
        column = np.asarray(data)
        if column.ndim != 1:
            raise DataValidationError(f"column must be 1-D, got shape {column.shape}")
        if self._columns and column.shape[0] != self._columns[0].shape[0]:
            raise DataValidationError(
                f"column has {column.shape[0]} entries, expected "
                f"{self._columns[0].shape[0]}"
            )
        if len(self._columns) >= self.horizon:
            raise DataValidationError(f"horizon {self.horizon} already exhausted")
        self._columns.append(column.astype(np.uint8))
        self._release = _OracleRelease(
            LongitudinalDataset(np.column_stack(self._columns))
        )
        return self._release

    def run(self, dataset: LongitudinalDataset) -> _OracleRelease:
        """Record the panel and return the oracle release."""
        if dataset.horizon != self.horizon:
            raise DataValidationError(
                f"dataset horizon {dataset.horizon} != synthesizer horizon {self.horizon}"
            )
        self._release = _OracleRelease(dataset)
        return self._release

    def config_dict(self) -> dict:
        """JSON-able construction parameters."""
        return {"algorithm": "nonprivate", "horizon": self.horizon}

    def state_dict(self, *, copy: bool = True) -> dict:
        """Snapshot of the observed prefix (the oracle's only state)."""
        if not self._columns:
            return {"t": 0}
        stacked = np.column_stack(self._columns)
        return {"t": len(self._columns), "columns": stacked.copy() if copy else stacked}
