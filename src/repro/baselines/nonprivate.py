"""Non-private oracle synthesizer.

Releases synthetic data equal in distribution to the raw panel (in fact,
the raw panel itself).  Used as the accuracy ceiling in comparisons and to
sanity-check experiment plumbing: every query answered on the oracle's
release must equal the ground truth exactly.
"""

from __future__ import annotations

from repro.data.dataset import LongitudinalDataset
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.queries.base import Query

__all__ = ["NonPrivateSynthesizer"]


class _OracleRelease:
    """Release view that evaluates queries on the raw panel."""

    def __init__(self, panel: LongitudinalDataset):
        self._panel = panel

    @property
    def t(self) -> int:
        """Rounds available."""
        return self._panel.horizon

    def synthetic_data(self, t: int | None = None) -> LongitudinalDataset:
        """The "synthetic" panel — the raw data itself."""
        return self._panel if t is None else self._panel.prefix(t)

    def answer(self, query: Query, t: int, debias: bool = True) -> float:
        """Ground-truth answer (``debias`` accepted for API compatibility)."""
        return query.evaluate(self._panel, t)


class NonPrivateSynthesizer:
    """Oracle: outputs the original records (no privacy whatsoever).

    Parameters
    ----------
    horizon:
        Known time horizon ``T`` (validated against the panel fed to
        ``run``).

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``horizon`` is not positive.
    """

    def __init__(self, horizon: int):
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        self.horizon = int(horizon)
        self._release: _OracleRelease | None = None

    @property
    def release(self) -> _OracleRelease:
        """The release view (after :meth:`run`)."""
        if self._release is None:
            raise NotFittedError("run() has not been called")
        return self._release

    def run(self, dataset: LongitudinalDataset) -> _OracleRelease:
        """Record the panel and return the oracle release."""
        if dataset.horizon != self.horizon:
            raise DataValidationError(
                f"dataset horizon {dataset.horizon} != synthesizer horizon {self.horizon}"
            )
        self._release = _OracleRelease(dataset)
        return self._release
