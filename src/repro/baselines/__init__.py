"""Baseline synthesizers the paper argues against.

* :class:`RecomputeBaseline` — regenerate a fresh synthetic dataset from
  scratch every round (the paper's introductory strawman).  Pays the
  composition penalty *and* breaks longitudinal consistency: synthetic
  individuals do not persist, so statistics like "ever experienced a
  6-month spell" can decrease over time.
* :class:`ClampingBaseline` — Algorithm 1's noising stage with naive
  non-negative clamping instead of padding.  §3.1 explains why this fails:
  clamped zero counts cannot be resurrected, which both biases estimates
  and breaks the consistency constraint the paper's correction relies on.
* :class:`NonPrivateSynthesizer` — releases the truth (an oracle for
  accuracy comparisons; no privacy).
* :class:`PrivateDensityBaseline` — per-round private density estimation
  over window patterns (noisy histogram, clamp, renormalize, resample; in
  the spirit of Bojkovic & Loh).  The external competitor the utility
  harness scores against Algorithm 1: it pays the per-round composition
  penalty and has no longitudinal linkage between rounds.
"""

from repro.baselines.clamped import ClampingBaseline
from repro.baselines.density import DensityRelease, PrivateDensityBaseline
from repro.baselines.nonprivate import NonPrivateSynthesizer
from repro.baselines.recompute import RecomputeBaseline, RecomputeRelease

__all__ = [
    "RecomputeBaseline",
    "RecomputeRelease",
    "ClampingBaseline",
    "NonPrivateSynthesizer",
    "PrivateDensityBaseline",
    "DensityRelease",
]
