"""Histogram-based private density estimation — the competitor baseline.

Private density estimation over a discrete domain (in the spirit of
Bojkovic & Loh's locally/centrally private density estimators): at every
round the mechanism privatizes the histogram of length-``k`` window
patterns with discrete Gaussian noise, clamps and renormalizes it into a
probability density over the ``q**k`` pattern cells, and releases a fresh
synthetic sample drawn iid from that density.

This is a *per-round single-shot* competitor to Algorithm 1, and it fails
in instructive, measurable ways:

* **Composition penalty** — each of the ``T - k + 1`` rounds gets only
  ``rho / (T - k + 1)``, so the per-bin noise scale carries the same
  ``sqrt(T - k + 1)`` factor as the recompute strawman;
* **No longitudinal consistency** — every round's sample is a fresh
  population; synthetic individuals do not persist, so monotone
  statistics can decrease between rounds;
* **Clamp-and-renormalize bias** — truncating negative noisy bins at 0
  before normalizing inflates small cells, the same §3.1 pathology the
  clamping baseline exhibits (padding avoids it).

The utility harness (:mod:`repro.analysis.utility`) scores this baseline
head-to-head with Algorithm 1 on pMSE and query accuracy; it satisfies the
:class:`~repro.types.Synthesizer` protocol (``run`` / ``observe`` /
``release`` / ``config_dict`` / ``state_dict``) so
:func:`~repro.analysis.replication.replicate_synthesizer` drives it
unchanged.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.categorical import CategoricalDataset
from repro.data.dataset import LongitudinalDataset
from repro.dp.accountant import ZCDPAccountant
from repro.dp.mechanisms import GaussianHistogramMechanism
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.queries.categorical import categorical_pattern_table
from repro.queries.plan import scalar_answer_grid
from repro.rng import SeedLike, as_generator, generator_state, spawn
from repro.types import AttributeFrame

__all__ = ["PrivateDensityBaseline", "DensityRelease"]


class DensityRelease:
    """Per-round densities and fresh synthetic samples of the baseline.

    Parameters
    ----------
    baseline:
        The fitted :class:`PrivateDensityBaseline` this view reads from.
    """

    def __init__(self, baseline: "PrivateDensityBaseline"):
        self._baseline = baseline

    @property
    def t(self) -> int:
        """Rounds observed so far."""
        return self._baseline.t

    def density(self, t: int) -> np.ndarray:
        """The released pattern density at round ``t`` (length ``q**k``)."""
        try:
            return self._baseline._densities[t]
        except KeyError:
            raise NotFittedError(f"no density released for t={t}") from None

    def synthetic_data(self, t: int | None = None):
        """The fresh ``window``-wide synthetic panel sampled at round ``t``.

        Parameters
        ----------
        t:
            Release round (default: the latest).  Each round's panel is an
            independent sample — there is no linkage between rounds.
        """
        if t is None:
            if not self._baseline._panels:
                raise NotFittedError("no rounds released yet")
            t = max(self._baseline._panels)
        try:
            return self._baseline._panels[t]
        except KeyError:
            raise NotFittedError(f"no synthetic panel for t={t}") from None

    def answer(self, query, t: int, debias: bool = True) -> float:
        """Answer a window query from the round-``t`` released density.

        The answer is ``weights @ density`` after marginalizing the
        length-``k`` density down to the query's width (summing out the
        oldest positions), so any suffix-window query of width
        ``<= window`` is supported.  ``debias`` is accepted for interface
        compatibility and ignored — density answers carry no padding
        offset to subtract.

        Parameters
        ----------
        query:
            A binary :class:`~repro.queries.base.WindowQuery` or a
            :class:`~repro.queries.categorical.CategoricalWindowQuery`
            matching the baseline's alphabet.
        t:
            Release round.
        debias:
            Ignored (interface compatibility).
        """
        width = getattr(query, "k", None)
        weights = getattr(query, "weights", None)
        if width is None or weights is None:
            raise ConfigurationError(
                f"density answers need a window query with weights, got {query!r}"
            )
        alphabet = int(getattr(query, "alphabet", 2))
        if alphabet != self._baseline.alphabet:
            raise ConfigurationError(
                f"query alphabet {alphabet} != baseline alphabet "
                f"{self._baseline.alphabet}"
            )
        if not 1 <= width <= self._baseline.window:
            raise ConfigurationError(
                f"query width {width} outside [1, window={self._baseline.window}]"
            )
        density = self.density(t)
        marginal = self._baseline._suffix_marginal(density, width)
        return float(np.asarray(weights, dtype=np.float64) @ marginal)

    def answer_batch(self, queries, times, debias: bool = True) -> np.ndarray:
        """Workload grid via the scalar fallback (density answers are cheap)."""
        return scalar_answer_grid(self, queries, times, debias=debias)

    def __repr__(self) -> str:
        return f"DensityRelease(t={self.t}, rounds={sorted(self._baseline._panels)})"


class PrivateDensityBaseline:
    """Noisy-histogram private density estimation, one release per round.

    Parameters
    ----------
    horizon:
        Total number of rounds ``T``.
    window:
        Pattern width ``k`` of the estimated density (``1 <= k <= T``).
    rho:
        Total zCDP budget, split evenly over the ``T - k + 1`` release
        rounds; ``math.inf`` disables the noise (oracle density).
    alphabet:
        Category count ``q >= 2`` (2 = binary panels).
    n_synthetic:
        Records per released sample (default: the observed population
        size).
    seed:
        Seed or generator for noise and sampling.
    noise_method:
        Discrete Gaussian sampler backend (``"exact"`` or
        ``"vectorized"``).

    Raises
    ------
    repro.exceptions.ConfigurationError
        On out-of-range ``horizon``, ``window``, ``rho``, ``alphabet``,
        or ``n_synthetic``.
    """

    def __init__(
        self,
        horizon: int,
        window: int,
        rho: float,
        *,
        alphabet: int = 2,
        n_synthetic: int | None = None,
        seed: SeedLike = None,
        noise_method: str = "exact",
    ):
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if not 1 <= window <= horizon:
            raise ConfigurationError(
                f"window must lie in [1, horizon={horizon}], got {window}"
            )
        if not rho > 0:
            raise ConfigurationError(f"rho must be positive, got {rho}")
        if alphabet < 2:
            raise ConfigurationError(f"alphabet must be at least 2, got {alphabet}")
        if n_synthetic is not None and n_synthetic <= 0:
            raise ConfigurationError(
                f"n_synthetic must be positive, got {n_synthetic}"
            )
        self.horizon = int(horizon)
        self.window = int(window)
        self.rho = float(rho)
        self.alphabet = int(alphabet)
        self.n_synthetic = None if n_synthetic is None else int(n_synthetic)
        self.noise_method = noise_method
        self.n_bins = self.alphabet**self.window
        self.rounds = self.horizon - self.window + 1
        noise_seed, self._sampling_generator = spawn(as_generator(seed), 2)
        if math.isinf(rho):
            self.rho_per_round = math.inf
            self.accountant = None
            self._mechanism = None
        else:
            self.rho_per_round = self.rho / self.rounds
            self.accountant = ZCDPAccountant(self.rho)
            # sigma^2 = 1 / (2 rho_round) at sensitivity 1 — the same
            # add/remove accounting convention as Algorithm 1's stage 1.
            self._mechanism = GaussianHistogramMechanism(
                self.n_bins,
                1.0 / (2.0 * self.rho_per_round),
                seed=noise_seed,
                method=noise_method,
            )
        self._pattern_table = categorical_pattern_table(self.window, self.alphabet)
        self._t = 0
        self._columns: list[np.ndarray] = []
        self._densities: dict[int, np.ndarray] = {}
        self._panels: dict[int, object] = {}

    @property
    def t(self) -> int:
        """Rounds observed so far."""
        return self._t

    @property
    def release(self) -> DensityRelease:
        """View of every density and sample released so far."""
        return DensityRelease(self)

    def zcdp_spent(self) -> float:
        """Total zCDP charged so far (0.0 for the noiseless oracle)."""
        return 0.0 if self.accountant is None else self.accountant.spent

    def _suffix_marginal(self, density: np.ndarray, width: int) -> np.ndarray:
        """Marginal density of the most recent ``width`` window positions."""
        if width == self.window:
            return density
        shaped = density.reshape((self.alphabet,) * self.window)
        return shaped.sum(axis=tuple(range(self.window - width))).reshape(-1)

    def _window_histogram(self) -> np.ndarray:
        """Pattern counts of the most recent ``window`` observed columns."""
        recent = np.column_stack(self._columns[-self.window :])
        powers = self.alphabet ** np.arange(
            self.window - 1, -1, -1, dtype=np.int64
        )
        codes = recent.astype(np.int64) @ powers
        return np.bincount(codes, minlength=self.n_bins)

    def observe(self, data, *, entrants: int = 0, exits=None) -> DensityRelease:
        """Consume one round's reports; release a density once ``t >= k``.

        Parameters
        ----------
        data:
            Length-``n`` report vector with values in ``[0, alphabet)``,
            or a width-1 :class:`~repro.types.AttributeFrame`.
        entrants, exits:
            Unsupported — the baseline estimates a fixed-population
            density.
        """
        if entrants or (exits is not None and np.asarray(exits).size):
            raise ConfigurationError(
                "PrivateDensityBaseline does not support churn (entrants/exits)"
            )
        if isinstance(data, AttributeFrame):
            data = data.sole()
        column = np.asarray(data)
        if column.ndim != 1:
            raise DataValidationError(
                f"column must be 1-D, got shape {column.shape}"
            )
        if column.size == 0:
            raise DataValidationError("column must not be empty")
        if not np.issubdtype(column.dtype, np.integer):
            if not np.issubdtype(column.dtype, np.bool_):
                raise DataValidationError(
                    f"column values must be integers, got dtype {column.dtype}"
                )
            column = column.astype(np.int64)
        if column.min() < 0 or column.max() >= self.alphabet:
            raise DataValidationError(
                f"column values must lie in [0, {self.alphabet}), got range "
                f"[{column.min()}, {column.max()}]"
            )
        if self._columns and column.shape[0] != self._columns[0].shape[0]:
            raise DataValidationError(
                f"column has {column.shape[0]} entries, expected "
                f"{self._columns[0].shape[0]}"
            )
        if self._t >= self.horizon:
            raise DataValidationError(f"horizon {self.horizon} already exhausted")
        self._t += 1
        self._columns.append(column.astype(np.int64))
        if self._t < self.window:
            return self.release

        histogram = self._window_histogram()
        if self._mechanism is None:
            noisy = histogram.astype(np.int64)
        else:
            self.accountant.charge(
                self.rho_per_round, label=f"density release t={self._t}"
            )
            noisy = self._mechanism.release(histogram)
        clamped = np.maximum(noisy, 0).astype(np.float64)
        total = clamped.sum()
        if total <= 0:
            density = np.full(self.n_bins, 1.0 / self.n_bins)
        else:
            density = clamped / total
        density.setflags(write=False)
        self._densities[self._t] = density

        n_sample = self.n_synthetic or self._columns[0].shape[0]
        codes = self._sampling_generator.choice(self.n_bins, size=n_sample, p=density)
        matrix = self._pattern_table[codes]
        if self.alphabet == 2:
            panel = LongitudinalDataset(matrix)
        else:
            panel = CategoricalDataset(matrix, self.alphabet)
        self._panels[self._t] = panel
        return self.release

    def config_dict(self) -> dict:
        """JSON-able construction parameters."""
        return {
            "algorithm": "density",
            "horizon": self.horizon,
            "window": self.window,
            "rho": self.rho,
            "alphabet": self.alphabet,
            "n_synthetic": self.n_synthetic,
            "noise_method": self.noise_method,
        }

    def state_dict(self, *, copy: bool = True) -> dict:
        """Snapshot of the mutable state (observed prefix + RNG streams)."""
        state: dict = {
            "t": self._t,
            "sampling_generator": generator_state(self._sampling_generator),
        }
        if self.accountant is not None:
            state["accountant"] = self.accountant.to_dict()
        if self._columns:
            stacked = np.column_stack(self._columns)
            state["columns"] = stacked.copy() if copy else stacked
        return state

    def run(self, dataset) -> DensityRelease:
        """Batch driver: feed every column of ``dataset`` in order.

        Parameters
        ----------
        dataset:
            A :class:`~repro.data.dataset.LongitudinalDataset`
            (``alphabet=2``) or
            :class:`~repro.data.categorical.CategoricalDataset` with this
            baseline's alphabet and horizon.
        """
        if dataset.horizon != self.horizon:
            raise DataValidationError(
                f"dataset horizon {dataset.horizon} != baseline horizon "
                f"{self.horizon}"
            )
        panel_alphabet = int(getattr(dataset, "alphabet", 2))
        if panel_alphabet != self.alphabet:
            raise DataValidationError(
                f"dataset alphabet {panel_alphabet} != baseline alphabet "
                f"{self.alphabet}"
            )
        if self._t:
            raise ConfigurationError("run() requires a fresh baseline")
        for column in dataset.columns():
            self.observe(column)
        return self.release

    def __repr__(self) -> str:
        return (
            f"PrivateDensityBaseline(T={self.horizon}, k={self.window}, "
            f"rho={self.rho}, q={self.alphabet}, t={self._t})"
        )
