"""The recompute-from-scratch baseline (the paper's introductory strawman).

"Simply recompute a new synthetic dataset from scratch in every round. That
is, in each time step t, one could apply a single-shot synthetic data
generator to the portion of the dataset observed up to time t" (§1).

Each round ``t >= k`` this baseline runs a fresh single-shot synthesis over
the prefix ``1..t`` (internally a fixed-window synthesizer with horizon
``t``), with the total budget split evenly over the ``T - k + 1`` rounds as
composition requires.  Two failure modes the paper highlights, both
measurable on this class:

* **Composition penalty** — each round's synthesis gets only
  ``rho / (T-k+1)``, so its per-bin noise scale is
  ``(T-k+1)/sqrt(2 rho)`` — a ``sqrt(T-k+1)`` factor worse than
  Algorithm 1 (compare ``error_stddev_factor``).
* **No consistency** — round ``t + 1`` materializes entirely new records,
  so monotone longitudinal statistics such as "ever experienced pattern s"
  (:meth:`RecomputeRelease.ever_pattern_series`) can *decrease* between
  rounds, which is impossible under a consistent release.  The
  `abl-baseline` benchmark counts these violations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.fixed_window import FixedWindowSynthesizer
from repro.core.population import validate_binary_column
from repro.data.dataset import LongitudinalDataset
from repro.dp.accountant import ZCDPAccountant
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.queries.base import WindowQuery
from repro.queries.plan import scalar_answer_grid
from repro.rng import SeedLike, as_generator, generator_state, spawn
from repro.types import AttributeFrame

__all__ = [
    "RecomputeBaseline",
    "RecomputeRelease",
    "ever_pattern_fraction",
    "ever_spell_fraction",
]


def ever_pattern_fraction(
    panel: LongitudinalDataset, k: int, pattern_code: int, t: int
) -> float:
    """Fraction of records that matched window pattern ``s`` at least once.

    Scans every window position ``tau = k..t``; this is the "ever
    experienced a spell" style statistic whose monotonicity consistent
    releases preserve.
    """
    if t < k:
        return 0.0
    ever = np.zeros(panel.n_individuals, dtype=bool)
    for tau in range(k, t + 1):
        ever |= panel.window_codes(tau, k) == pattern_code
    return float(ever.mean())


def ever_spell_fraction(panel: LongitudinalDataset, length: int, t: int) -> float:
    """Fraction of records with a run of >= ``length`` consecutive 1s by ``t``.

    The paper's motivating pathology: "the number of synthetic individuals
    who have ever experienced a 6-month unemployment spell" must never
    decrease under a consistent release, but can decrease when each round's
    synthetic population is regenerated from scratch.
    """
    if length <= 0:
        return 1.0
    if t < length:
        return 0.0
    matrix = panel.matrix[:, :t]
    run = np.zeros(matrix.shape[0], dtype=np.int64)
    best = np.zeros(matrix.shape[0], dtype=np.int64)
    for j in range(t):
        run = np.where(matrix[:, j] == 1, run + 1, 0)
        best = np.maximum(best, run)
    return float((best >= length).mean())


class RecomputeRelease:
    """One fresh synthetic panel per round, with no linkage between rounds."""

    #: Release-protocol capability flag: ``answer`` honors ``debias=``
    #: (forwarded to the round's inner window release).
    debias_aware = True

    def __init__(self, baseline: "RecomputeBaseline"):
        self._baseline = baseline

    @property
    def t(self) -> int:
        """Rounds observed so far."""
        return self._baseline.t

    def panel(self, t: int) -> LongitudinalDataset:
        """The fresh synthetic panel regenerated at round ``t`` (covers 1..t)."""
        try:
            return self._baseline._panels[t]
        except KeyError:
            raise NotFittedError(f"no panel released for t={t}") from None

    def synthetic_data(self, t: int | None = None) -> LongitudinalDataset:
        """The round-``t`` fresh synthetic panel (default: the latest).

        The uniform spelling every release type exposes; identical to
        :meth:`panel` apart from the latest-round default.
        """
        if t is None:
            if not self._baseline._panels:
                raise NotFittedError("no rounds released yet")
            t = max(self._baseline._panels)
        return self.panel(t)

    def answer(self, query: WindowQuery, t: int, debias: bool = True) -> float:
        """Answer a window query on the round-``t`` fresh panel."""
        try:
            release = self._baseline._releases[t]
        except KeyError:
            raise NotFittedError(f"no release for t={t}") from None
        return release.answer(query, t, debias=debias)

    def answer_batch(self, queries, times, debias: bool = True) -> np.ndarray:
        """Workload grid via the scalar fallback.

        Each round answers from a *different* inner release (the fresh
        per-round synthesis), so there is no shared compiled plan to
        amortize; the fallback is already the natural evaluation.
        """
        return scalar_answer_grid(self, queries, times, debias=debias)

    def padding(self, t: int):
        """Public padding spec of the round-``t`` single-shot synthesis.

        Each round regenerates the prefix with a fresh
        :class:`~repro.core.fixed_window.FixedWindowSynthesizer`, so the
        padding parameters differ per round; utility scorers
        (:func:`~repro.analysis.utility.pmse_release`) use this to score
        the fresh panel against its padded target.
        """
        try:
            return self._baseline._releases[t].padding
        except KeyError:
            raise NotFittedError(f"no release for t={t}") from None

    def ever_pattern_series(self, pattern_code: int) -> list[float]:
        """"Ever matched pattern" fraction per round, each on its own panel.

        Under a consistent release this series is non-decreasing; here each
        point comes from an unrelated population, so decreases occur.
        """
        k = self._baseline.window
        return [
            ever_pattern_fraction(self._baseline._panels[t], k, pattern_code, t)
            for t in sorted(self._baseline._panels)
        ]

    def consistency_violations(self, pattern_code: int) -> int:
        """Number of rounds where the "ever matched" series decreased."""
        series = self.ever_pattern_series(pattern_code)
        tolerance = 1e-12
        return int(sum(1 for a, b in zip(series, series[1:]) if b < a - tolerance))

    def ever_spell_series(self, length: int) -> list[float]:
        """"Ever had a >= length spell" fraction per round, fresh panels."""
        return [
            ever_spell_fraction(self._baseline._panels[t], length, t)
            for t in sorted(self._baseline._panels)
        ]

    def spell_violations(self, lengths: tuple[int, ...] = (5, 6)) -> int:
        """Total decreases of the "ever had a spell" series over lengths."""
        total = 0
        for length in lengths:
            series = self.ever_spell_series(length)
            total += sum(1 for a, b in zip(series, series[1:]) if b < a - 1e-12)
        return total


class RecomputeBaseline:
    """Fresh single-shot synthesis of the whole prefix, every round.

    Parameters mirror :class:`~repro.core.fixed_window.FixedWindowSynthesizer`.
    The per-round single-shot generator reuses the fixed-window machinery
    with horizon ``t`` — a reasonable single-shot synthesizer for the query
    class ``Q_t`` — seeded independently per round.
    """

    def __init__(
        self,
        horizon: int,
        window: int,
        rho: float,
        *,
        beta: float = 0.05,
        seed: SeedLike = None,
        noise_method: str = "exact",
    ):
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if not 1 <= window <= horizon:
            raise ConfigurationError(
                f"window must lie in [1, horizon={horizon}], got {window}"
            )
        if not rho > 0:
            raise ConfigurationError(f"rho must be positive, got {rho}")
        self.horizon = int(horizon)
        self.window = int(window)
        self.rho = float(rho)
        self.beta = float(beta)
        self.noise_method = noise_method
        self._generator = as_generator(seed)
        self.rounds = self.horizon - self.window + 1
        self.rho_per_round = math.inf if math.isinf(rho) else self.rho / self.rounds
        self.accountant = None if math.isinf(rho) else ZCDPAccountant(self.rho)
        self._round_seeds = spawn(self._generator, self.rounds)
        self._t = 0
        self._columns: list[np.ndarray] = []
        self._panels: dict[int, LongitudinalDataset] = {}
        self._releases: dict[int, object] = {}

    @property
    def t(self) -> int:
        """Rounds observed so far."""
        return self._t

    @property
    def release(self) -> RecomputeRelease:
        """View of everything released so far."""
        return RecomputeRelease(self)

    def error_stddev_factor(self) -> float:
        """Per-bin noise stddev at the final round, for bound comparisons.

        The round-``T`` synthesis adds ``N_Z(0, (T-k+1)/(2 rho_round))``
        per bin with ``rho_round = rho/(T-k+1)``: stddev
        ``(T-k+1)/sqrt(2 rho)`` — compare Algorithm 1's
        ``sqrt((T-k+1)/(2 rho))``.
        """
        if math.isinf(self.rho):
            return 0.0
        return self.rounds / math.sqrt(2.0 * self.rho)

    def observe(self, data, *, entrants: int = 0, exits=None) -> RecomputeRelease:
        """Consume one round's reports; regenerate the prefix once ``t >= k``.

        Parameters
        ----------
        data:
            Length-``n`` 0/1 report vector, or a width-1
            :class:`~repro.types.AttributeFrame`.
        entrants, exits:
            Unsupported — the strawman rebuilds a fixed-population prefix.
        """
        if entrants or (exits is not None and np.asarray(exits).size):
            raise ConfigurationError(
                "RecomputeBaseline does not support churn (entrants/exits)"
            )
        if isinstance(data, AttributeFrame):
            data = data.sole()
        column = np.asarray(data)
        if column.ndim != 1:
            raise DataValidationError(f"column must be 1-D, got shape {column.shape}")
        validate_binary_column(column)
        if self._columns and column.shape[0] != self._columns[0].shape[0]:
            raise DataValidationError(
                f"column has {column.shape[0]} entries, expected {self._columns[0].shape[0]}"
            )
        if self._t >= self.horizon:
            raise DataValidationError(f"horizon {self.horizon} already exhausted")
        self._t += 1
        self._columns.append(column.astype(np.uint8))
        if self._t < self.window:
            return self.release

        prefix = LongitudinalDataset(np.column_stack(self._columns))
        round_index = self._t - self.window  # 0-based
        if self.accountant is not None:
            self.accountant.charge(
                self.rho_per_round, label=f"single-shot synthesis t={self._t}"
            )
        single_shot = FixedWindowSynthesizer(
            horizon=self._t,
            window=self.window,
            rho=self.rho_per_round,
            beta=self.beta,
            seed=self._round_seeds[round_index],
            noise_method=self.noise_method,
        )
        inner_release = single_shot.run(prefix)
        self._releases[self._t] = inner_release
        self._panels[self._t] = inner_release.synthetic_data()
        return self.release

    def run(self, dataset: LongitudinalDataset) -> RecomputeRelease:
        """Batch driver."""
        if dataset.horizon != self.horizon:
            raise DataValidationError(
                f"dataset horizon {dataset.horizon} != baseline horizon {self.horizon}"
            )
        if self._t:
            raise ConfigurationError("run() requires a fresh baseline")
        for column in dataset.columns():
            self.observe(column)
        return self.release

    def config_dict(self) -> dict:
        """JSON-able construction parameters."""
        return {
            "algorithm": "recompute",
            "horizon": self.horizon,
            "window": self.window,
            "rho": self.rho,
            "beta": self.beta,
            "noise_method": self.noise_method,
        }

    def state_dict(self, *, copy: bool = True) -> dict:
        """Snapshot of the mutable state.

        Includes the observed prefix and every RNG stream, so replaying
        the remaining columns after a restore regenerates identical
        panels (each round draws from its own pre-spawned seed).
        """
        state: dict = {
            "t": self._t,
            "generator": generator_state(self._generator),
            "round_seeds": [generator_state(g) for g in self._round_seeds],
        }
        if self.accountant is not None:
            state["accountant"] = self.accountant.to_dict()
        if self._columns:
            stacked = np.column_stack(self._columns)
            state["columns"] = stacked.copy() if copy else stacked
        return state
