"""Naive clamping baseline — what goes wrong without padding (§3.1).

"One possible way to address [negative noisy counts] is clamping the noisy
counts to be non-negative, but this will break the consistency guarantee
when continually releasing the synthetic data."

This baseline runs Algorithm 1's pipeline with ``n_pad = 0`` and, whenever
a pair target goes negative, clamps it — exactly the fallback the paper
warns about.  Two measurable consequences, exercised by the padding
ablation (`abl-npad`):

* zero counts cannot be resurrected at later rounds within a pair whose
  total collapsed, so small bins get stuck at 0 (upward bias on the
  complement);
* the clamp events themselves (counted in ``negative_count_events``) are
  frequent, whereas Algorithm 1's padding keeps them away with probability
  ``1 - beta``.
"""

from __future__ import annotations

from repro.core.fixed_window import FixedWindowSynthesizer
from repro.rng import SeedLike

__all__ = ["ClampingBaseline"]


class ClampingBaseline(FixedWindowSynthesizer):
    """Algorithm 1 with no padding and silent clamping of negative counts.

    A thin configuration of :class:`FixedWindowSynthesizer`: ``n_pad = 0``
    and ``on_negative="redistribute"`` (the clamp), so every other behaviour
    — privacy accounting, consistency projection, record persistence — is
    identical and differences in the benchmarks are attributable to the
    padding alone.
    """

    def __init__(
        self,
        horizon: int,
        window: int,
        rho: float,
        *,
        seed: SeedLike = None,
        noise_method: str = "exact",
        sensitivity: float = 1.0,
    ):
        super().__init__(
            horizon,
            window,
            rho,
            n_pad=0,
            on_negative="redistribute",
            seed=seed,
            noise_method=noise_method,
            sensitivity=sensitivity,
        )
