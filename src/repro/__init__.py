"""Continual release of DP synthetic data from longitudinal data collections.

A faithful, production-grade reproduction of

    Mark Bun, Marco Gaboardi, Marcel Neunhoeffer, and Wanrong Zhang.
    "Continual Release of Differentially Private Synthetic Data from
    Longitudinal Data Collections."  Proc. ACM Manag. Data 2, 2 (PODS),
    Article 94, May 2024.  https://doi.org/10.1145/3651595

Quickstart::

    from repro import FixedWindowSynthesizer, load_sipp_2021, AtLeastMOnes

    panel = load_sipp_2021()                       # N=23374, T=12
    synth = FixedWindowSynthesizer(horizon=12, window=3, rho=0.005, seed=0)
    release = synth.run(panel)
    release.answer(AtLeastMOnes(3, 1), t=6)        # debiased by default

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the paper's Algorithms 1 and 2;
* :mod:`repro.dp` — discrete Gaussian samplers and zCDP accounting;
* :mod:`repro.streams` — pluggable DP stream counters (Algorithm 3 et al.);
* :mod:`repro.data` — panels, generators, SIPP simulator, de Bruijn padding;
* :mod:`repro.queries` — window and cumulative query classes;
* :mod:`repro.baselines` — recompute-from-scratch, clamping, oracle,
  private density estimation;
* :mod:`repro.analysis` — theory bounds, metrics, replication harness,
  pMSE utility scoring;
* :mod:`repro.serve` — online serving: round-by-round ingestion,
  checkpoint/restore, sharded multi-tenant scaling;
* :mod:`repro.experiments` — one runnable definition per paper figure.
"""

from repro.analysis import (
    PMSEProbe,
    PMSEScore,
    ReplicatedAnswers,
    SeriesSummary,
    UtilityReport,
    pmse_release,
    propensity_pmse,
    replicate_synthesizer,
    score_synthesizer,
)
from repro.baselines import (
    ClampingBaseline,
    NonPrivateSynthesizer,
    PrivateDensityBaseline,
    RecomputeBaseline,
)
from repro.core import (
    AttributeSpec,
    CategoricalWindowRelease,
    CategoricalWindowSynthesizer,
    CumulativeRelease,
    CumulativeSynthesizer,
    FixedWindowRelease,
    FixedWindowSynthesizer,
    MultiAttributeRelease,
    MultiAttributeSynthesizer,
    PaddingSpec,
)
from repro.data import (
    CategoricalDataset,
    DynamicPanel,
    LongitudinalDataset,
    all_ones,
    apply_churn,
    categorical_iid,
    categorical_markov,
    churn_two_state_markov,
    employment_status_panel,
    iid_bernoulli,
    load_sipp_2021,
    load_sipp_dynamic,
    padding_panel,
    two_state_markov,
)
from repro.dp import DiscreteGaussianSampler, ZCDPAccountant
from repro.exceptions import (
    ConfigurationError,
    ConsistencyError,
    DataValidationError,
    DegradedServiceWarning,
    NegativeCountError,
    NotFittedError,
    PrivacyBudgetError,
    RecoveryError,
    ReproError,
    SerializationError,
    StreamLengthError,
)
from repro.queries import (
    AllOnes,
    AtLeastMConsecutiveOnes,
    AtLeastMOnes,
    CategoricalPatternQuery,
    CategoricalWindowQuery,
    CategoryAtLeastM,
    ExactlyMOnes,
    HammingAtLeast,
    HammingExactly,
    PatternQuery,
    WindowLinearQuery,
    categorical_pattern_table,
    quarterly_poverty_workload,
)
from repro.serve import ShardedService, StreamingSynthesizer
from repro.streams import (
    BinaryTreeCounter,
    BlockCounter,
    HonakerCounter,
    MonotoneCounter,
    SimpleCounter,
    SqrtFactorizationCounter,
    available_counters,
    make_counter,
)
from repro.types import AttributeFrame, Release, Synthesizer, as_frame

__version__ = "1.1.0"

__all__ = [
    # core
    "FixedWindowSynthesizer",
    "FixedWindowRelease",
    "CumulativeSynthesizer",
    "CumulativeRelease",
    "CategoricalWindowSynthesizer",
    "CategoricalWindowRelease",
    "MultiAttributeSynthesizer",
    "MultiAttributeRelease",
    "AttributeSpec",
    "PaddingSpec",
    # data
    "LongitudinalDataset",
    "DynamicPanel",
    "CategoricalDataset",
    "load_sipp_2021",
    "load_sipp_dynamic",
    "all_ones",
    "iid_bernoulli",
    "two_state_markov",
    "apply_churn",
    "churn_two_state_markov",
    "categorical_iid",
    "categorical_markov",
    "employment_status_panel",
    "padding_panel",
    # queries
    "PatternQuery",
    "WindowLinearQuery",
    "AtLeastMOnes",
    "AtLeastMConsecutiveOnes",
    "AllOnes",
    "ExactlyMOnes",
    "CategoricalWindowQuery",
    "CategoricalPatternQuery",
    "CategoryAtLeastM",
    "categorical_pattern_table",
    "HammingAtLeast",
    "HammingExactly",
    "quarterly_poverty_workload",
    # dp / streams
    "DiscreteGaussianSampler",
    "ZCDPAccountant",
    "BinaryTreeCounter",
    "SimpleCounter",
    "HonakerCounter",
    "SqrtFactorizationCounter",
    "BlockCounter",
    "MonotoneCounter",
    "make_counter",
    "available_counters",
    # baselines / analysis
    "RecomputeBaseline",
    "ClampingBaseline",
    "NonPrivateSynthesizer",
    "PrivateDensityBaseline",
    "replicate_synthesizer",
    "ReplicatedAnswers",
    "SeriesSummary",
    # utility scoring
    "PMSEScore",
    "PMSEProbe",
    "UtilityReport",
    "propensity_pmse",
    "pmse_release",
    "score_synthesizer",
    # types / protocols
    "AttributeFrame",
    "as_frame",
    "Synthesizer",
    "Release",
    # serving
    "StreamingSynthesizer",
    "ShardedService",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "PrivacyBudgetError",
    "ConsistencyError",
    "NegativeCountError",
    "StreamLengthError",
    "DataValidationError",
    "NotFittedError",
    "SerializationError",
    "RecoveryError",
    "DegradedServiceWarning",
    "__version__",
]
