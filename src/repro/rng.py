"""Random-number-generation utilities shared by the whole library.

The library uses two kinds of randomness:

* **numpy Generators** for vectorized data generation and record shuffling.
* **Exact integer randomness** for the Canonne-Kamath-Steinke discrete
  Gaussian sampler, which needs uniform integers below arbitrary-precision
  bounds.  numpy's ``Generator.integers`` is limited to 64-bit bounds, so
  :class:`ExactRandom` builds unbounded uniform integers from raw 64-bit
  draws while staying reproducible from the same seed stream.

All entry points accept a ``seed`` that may be ``None`` (fresh OS entropy),
an ``int``, a :class:`numpy.random.SeedSequence`, or an existing
:class:`numpy.random.Generator` (used as-is).  :func:`spawn` derives
independent child generators for replicated experiments.
"""

from __future__ import annotations

import copy
from typing import Union

import numpy as np

__all__ = [
    "SeedLike",
    "as_generator",
    "spawn",
    "ExactRandom",
    "generator_state",
    "restore_generator_state",
]

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing ``Generator`` returns it unchanged so that callers
    can thread one generator through a pipeline; anything else builds a new
    PCG64 generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))


def spawn(seed: SeedLike, n_children: int) -> list[np.random.Generator]:
    """Derive ``n_children`` statistically independent generators.

    Used by the replication harness: each repetition of an experiment gets
    its own child stream so results are reproducible regardless of how many
    repetitions run or in which order.
    """
    if n_children < 0:
        raise ValueError(f"n_children must be non-negative, got {n_children}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=n_children)
        return [as_generator(int(s)) for s in seeds]
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in seed.spawn(n_children)]


def generator_state(generator: np.random.Generator) -> dict:
    """Snapshot a generator's bit-generator state as a JSON-safe dict.

    Parameters
    ----------
    generator:
        The generator to snapshot.

    Returns
    -------
    dict
        A deep copy of ``generator.bit_generator.state`` (plain ints,
        strings, and dicts — PCG64 state words are arbitrary-precision
        Python ints, which serialize losslessly through ``json``).

    The snapshot captures the *exact* position in the bit stream:
    restoring it with :func:`restore_generator_state` makes every
    subsequent draw byte-identical to one from the original generator.
    This is the primitive the :mod:`repro.serve` checkpoint layer builds
    on.
    """
    return copy.deepcopy(generator.bit_generator.state)


def restore_generator_state(generator: np.random.Generator, state: dict) -> None:
    """Restore a snapshot taken by :func:`generator_state` in place.

    Parameters
    ----------
    generator:
        The generator whose bit-generator state is overwritten.
    state:
        A snapshot previously produced by :func:`generator_state`.

    Raises
    ------
    repro.exceptions.SerializationError
        If ``state`` does not name the same bit-generator family as
        ``generator`` (e.g. a PCG64 snapshot applied to a Philox
        generator) or is structurally invalid.
    """
    from repro.exceptions import SerializationError

    if not isinstance(state, dict) or "bit_generator" not in state:
        raise SerializationError(
            "generator state must be a dict with a 'bit_generator' key, "
            f"got {type(state).__name__}"
        )
    expected = type(generator.bit_generator).__name__
    declared = state["bit_generator"]
    if declared != expected:
        raise SerializationError(
            f"generator state was taken from a {declared!r} bit generator "
            f"but is being restored into a {expected!r}"
        )
    try:
        generator.bit_generator.state = state
    except (ValueError, KeyError, TypeError) as exc:
        raise SerializationError(f"invalid generator state: {exc}") from exc


class ExactRandom:
    """Arbitrary-precision uniform integers on top of a numpy Generator.

    The exact discrete Gaussian sampler needs ``randrange(bound)`` for
    ``bound`` that can exceed 64 bits (denominators of exact rational
    acceptance probabilities).  This class assembles such draws from 32-bit
    words using rejection sampling, which keeps the distribution exactly
    uniform.
    """

    _WORD_BITS = 32

    def __init__(self, generator: np.random.Generator):
        self._generator = generator

    def randbits(self, k: int) -> int:
        """Return a uniform integer in ``[0, 2**k)``."""
        if k < 0:
            raise ValueError(f"number of bits must be non-negative, got {k}")
        value = 0
        remaining = k
        while remaining >= self._WORD_BITS:
            word = int(self._generator.integers(0, 1 << self._WORD_BITS))
            value = (value << self._WORD_BITS) | word
            remaining -= self._WORD_BITS
        if remaining:
            word = int(self._generator.integers(0, 1 << remaining))
            value = (value << remaining) | word
        return value

    def randrange(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)`` for any positive int."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        k = bound.bit_length()
        # Rejection sampling: accept draws below bound; each trial succeeds
        # with probability > 1/2, so the expected number of draws is < 2.
        while True:
            value = self.randbits(k)
            if value < bound:
                return value

    def bernoulli(self, numerator: int, denominator: int) -> bool:
        """Return True with probability exactly ``numerator/denominator``."""
        if denominator <= 0:
            raise ValueError(f"denominator must be positive, got {denominator}")
        if not 0 <= numerator <= denominator:
            raise ValueError(
                f"numerator must lie in [0, denominator], got {numerator}/{denominator}"
            )
        return self.randrange(denominator) < numerator
