"""Exact sampling from ``Bernoulli(exp(-gamma))`` for rational ``gamma``.

This is Algorithm 1 of Canonne, Kamath & Steinke, *The Discrete Gaussian for
Differential Privacy* (NeurIPS 2020).  It needs only uniform integers and
exact rational comparisons, so the output distribution is *exactly*
``Bernoulli(exp(-gamma))`` — no floating-point approximation is involved.
The exact discrete Laplace and discrete Gaussian samplers are rejection
samplers built on top of this primitive.
"""

from __future__ import annotations

from fractions import Fraction

from repro.rng import ExactRandom

__all__ = ["bernoulli_exp", "bernoulli_exp_le1"]


def bernoulli_exp_le1(gamma: Fraction, random: ExactRandom) -> bool:
    """Sample ``Bernoulli(exp(-gamma))`` exactly, for ``0 <= gamma <= 1``.

    Works by sampling the sequence ``A_k ~ Bernoulli(gamma / k)`` until the
    first failure at index ``K``; the output is 1 iff ``K`` is odd, which by
    the alternating series for ``exp(-gamma)`` has probability exactly
    ``exp(-gamma)``.
    """
    if not 0 <= gamma <= 1:
        raise ValueError(f"gamma must lie in [0, 1], got {gamma}")
    k = 1
    while True:
        p = gamma / k
        if not random.bernoulli(p.numerator, p.denominator):
            return k % 2 == 1
        k += 1


def bernoulli_exp(gamma: Fraction, random: ExactRandom) -> bool:
    """Sample ``Bernoulli(exp(-gamma))`` exactly, for any ``gamma >= 0``.

    For ``gamma > 1`` the event ``exp(-gamma)`` factors as
    ``exp(-1)^floor(gamma) * exp(-(gamma - floor(gamma)))``; each factor is
    sampled independently with :func:`bernoulli_exp_le1` and the conjunction
    is returned, short-circuiting on the first failure.
    """
    if gamma < 0:
        raise ValueError(f"gamma must be non-negative, got {gamma}")
    one = Fraction(1)
    while gamma > 1:
        if not bernoulli_exp_le1(one, random):
            return False
        gamma = gamma - 1
    return bernoulli_exp_le1(gamma, random)
