"""Exact probability mass function of the discrete Gaussian.

Definition 2.2 of the paper: ``P[X = x] = exp(-x^2/(2 sigma^2)) / Z`` with
``Z = sum_{y in Z} exp(-y^2/(2 sigma^2))``.  The normalizer is a rapidly
converging theta-function sum, so truncating at a few standard deviations
beyond the working precision is exact to double accuracy.

Used by the distributional tests (chi-square of sampler output against the
true pmf) and available to analysts who want exact noise tail probabilities
rather than the Gaussian-approximation bounds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "discrete_gaussian_normalizer",
    "discrete_gaussian_pmf",
    "discrete_gaussian_tail",
    "discrete_gaussian_variance",
]


def _truncation_radius(sigma_sq: float) -> int:
    """Support radius beyond which terms are below double precision."""
    sigma = math.sqrt(sigma_sq)
    # exp(-r^2 / (2 sigma^2)) < 1e-20  <=>  r > sigma * sqrt(40 ln 10).
    return max(int(math.ceil(sigma * math.sqrt(40.0 * math.log(10.0)))) + 2, 10)


def discrete_gaussian_normalizer(sigma_sq: float) -> float:
    """``Z = sum_y exp(-y^2 / (2 sigma^2))`` to double precision."""
    if sigma_sq <= 0:
        raise ConfigurationError(f"sigma_sq must be positive, got {sigma_sq}")
    radius = _truncation_radius(sigma_sq)
    ys = np.arange(-radius, radius + 1, dtype=np.float64)
    return float(np.exp(-(ys**2) / (2.0 * sigma_sq)).sum())


def discrete_gaussian_pmf(x, sigma_sq: float):
    """``P[X = x]`` for integer ``x`` (scalar or array)."""
    normalizer = discrete_gaussian_normalizer(sigma_sq)
    x = np.asarray(x, dtype=np.float64)
    result = np.exp(-(x**2) / (2.0 * sigma_sq)) / normalizer
    return float(result) if result.ndim == 0 else result

def discrete_gaussian_tail(k: int, sigma_sq: float) -> float:
    """``P[X >= k]`` for integer ``k`` — the exact upper tail."""
    if sigma_sq <= 0:
        raise ConfigurationError(f"sigma_sq must be positive, got {sigma_sq}")
    radius = _truncation_radius(sigma_sq)
    if k > radius:
        return 0.0
    ys = np.arange(k, radius + 1, dtype=np.float64)
    upper = float(np.exp(-(ys**2) / (2.0 * sigma_sq)).sum())
    return upper / discrete_gaussian_normalizer(sigma_sq)


def discrete_gaussian_variance(sigma_sq: float) -> float:
    """The exact variance — strictly below ``sigma_sq`` for small sigma.

    The paper's bounds use ``sigma^2`` as an upper bound on this quantity
    (Definition 2.2's note); this function gives the exact value.
    """
    normalizer = discrete_gaussian_normalizer(sigma_sq)
    radius = _truncation_radius(sigma_sq)
    ys = np.arange(-radius, radius + 1, dtype=np.float64)
    weights = np.exp(-(ys**2) / (2.0 * sigma_sq))
    return float((ys**2 * weights).sum() / normalizer)
