"""Zero-concentrated differential privacy (zCDP) accounting.

The paper states all privacy guarantees in terms of ``rho``-zCDP
(Definition 2.1, Bun & Steinke 2016).  This module provides:

* :class:`ZCDPAccountant` — a ledger that charges each noisy release and
  enforces a total budget (Theorem 2.1: zCDP composes additively).
* :func:`zcdp_to_approx_dp` — the standard conversion
  ``rho``-zCDP ⟹ ``(rho + 2 sqrt(rho ln(1/delta)), delta)``-DP, useful for
  reporting guarantees in the more familiar approximate-DP currency.
* :func:`approx_dp_to_zcdp` — the reverse direction for pure DP:
  ``eps``-DP ⟹ ``(eps^2 / 2)``-zCDP.
* :func:`gaussian_rho` / :func:`gaussian_sigma_sq` — calibration helpers for
  the (discrete) Gaussian mechanism: a sensitivity-``Delta`` query answered
  with variance ``sigma^2`` noise costs ``Delta^2 / (2 sigma^2)`` zCDP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, PrivacyBudgetError

__all__ = [
    "ZCDPAccountant",
    "zcdp_to_approx_dp",
    "approx_dp_to_zcdp",
    "gaussian_rho",
    "gaussian_sigma_sq",
]

# Tolerance for floating-point budget comparisons: charging exactly the
# remaining budget must succeed even after accumulated rounding error.
_BUDGET_RTOL = 1e-9


def gaussian_rho(sensitivity: float, sigma_sq: float) -> float:
    """zCDP cost of one Gaussian-noise release: ``sensitivity^2/(2 sigma^2)``."""
    if sensitivity < 0:
        raise ConfigurationError(f"sensitivity must be non-negative, got {sensitivity}")
    if sigma_sq <= 0:
        raise ConfigurationError(f"sigma_sq must be positive, got {sigma_sq}")
    return sensitivity**2 / (2.0 * sigma_sq)


def gaussian_sigma_sq(sensitivity: float, rho: float) -> float:
    """Noise variance needed for a sensitivity-``Delta`` query at ``rho``-zCDP."""
    if sensitivity < 0:
        raise ConfigurationError(f"sensitivity must be non-negative, got {sensitivity}")
    if rho <= 0:
        raise ConfigurationError(f"rho must be positive, got {rho}")
    return sensitivity**2 / (2.0 * rho)


def zcdp_to_approx_dp(rho: float, delta: float) -> float:
    """Smallest ``eps`` such that ``rho``-zCDP implies ``(eps, delta)``-DP.

    Uses the conversion of Bun & Steinke (2016, Proposition 1.3):
    ``eps = rho + 2 sqrt(rho * ln(1/delta))``.
    """
    if rho < 0:
        raise ConfigurationError(f"rho must be non-negative, got {rho}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must lie in (0, 1), got {delta}")
    return rho + 2.0 * math.sqrt(rho * math.log(1.0 / delta))


def approx_dp_to_zcdp(epsilon: float) -> float:
    """zCDP parameter implied by pure ``eps``-DP: ``eps^2 / 2``."""
    if epsilon < 0:
        raise ConfigurationError(f"epsilon must be non-negative, got {epsilon}")
    return epsilon**2 / 2.0


@dataclass
class _Charge:
    """One entry in the ledger."""

    label: str
    rho: float


class ZCDPAccountant:
    """Additive zCDP budget ledger.

    Mechanisms composed on the same dataset charge the accountant; the
    accountant refuses charges that would exceed ``total_rho`` (Theorem 2.1
    makes the sum of charges a valid bound for the composition).

    Parameters
    ----------
    total_rho:
        The hard total budget; a charge pushing the ledger past it raises
        :class:`~repro.exceptions.PrivacyBudgetError` *before* the
        mechanism runs.

    Raises
    ------
    repro.exceptions.ConfigurationError
        If ``total_rho`` is not positive.

    Examples
    --------
    >>> acct = ZCDPAccountant(total_rho=0.005)
    >>> acct.charge(0.001, label="histogram t=3")
    >>> round(acct.spent, 6)
    0.001
    >>> round(acct.remaining, 6)
    0.004
    """

    def __init__(self, total_rho: float):
        if total_rho <= 0:
            raise ConfigurationError(f"total_rho must be positive, got {total_rho}")
        self.total_rho = float(total_rho)
        self._charges: list[_Charge] = []

    @property
    def spent(self) -> float:
        """Total zCDP charged so far."""
        return math.fsum(charge.rho for charge in self._charges)

    @property
    def remaining(self) -> float:
        """Budget still available (never negative)."""
        return max(0.0, self.total_rho - self.spent)

    @property
    def charges(self) -> tuple[tuple[str, float], ...]:
        """Immutable view of the ledger as ``(label, rho)`` pairs."""
        return tuple((charge.label, charge.rho) for charge in self._charges)

    def charge(self, rho: float, label: str = "") -> None:
        """Record a ``rho``-zCDP release; raise if the budget would overflow."""
        if rho < 0:
            raise ConfigurationError(f"rho must be non-negative, got {rho}")
        new_total = self.spent + rho
        if new_total > self.total_rho * (1.0 + _BUDGET_RTOL):
            raise PrivacyBudgetError(
                f"charging {rho:.6g} zCDP would exceed the total budget: "
                f"spent {self.spent:.6g} of {self.total_rho:.6g}"
            )
        self._charges.append(_Charge(label=label, rho=float(rho)))

    def epsilon(self, delta: float) -> float:
        """``(eps, delta)``-DP guarantee implied by the budget spent so far."""
        return zcdp_to_approx_dp(self.spent, delta)

    def extend_budget(self, extra_rho: float, reason: str = "") -> None:
        """Raise the total budget by ``extra_rho`` — an explicit weakening.

        Dynamic workloads sometimes outgrow their planned release
        schedule (a churning panel extended past its original horizon);
        the honest accounting is to *declare* the weaker guarantee, not
        to sneak charges past a stale ceiling.  The new total becomes the
        advertised zCDP parameter of the whole composition.

        Parameters
        ----------
        extra_rho:
            Non-negative additional budget.
        reason:
            Optional annotation recorded as a zero-cost ledger entry so
            the extension is visible in the charge history.

        Raises
        ------
        repro.exceptions.ConfigurationError
            If ``extra_rho`` is negative.
        """
        if extra_rho < 0:
            raise ConfigurationError(
                f"extra_rho must be non-negative, got {extra_rho}"
            )
        self.total_rho += float(extra_rho)
        if reason:
            self._charges.append(
                _Charge(label=f"[budget extended by {extra_rho:.6g}: {reason}]", rho=0.0)
            )

    def to_dict(self) -> dict:
        """Serialize the ledger as a JSON-safe dict.

        Returns
        -------
        dict
            ``{"total_rho": float, "charges": [[label, rho], ...]}`` — the
            complete ledger in charge order, sufficient for
            :meth:`from_dict` to rebuild an accountant that accepts and
            refuses exactly the same future charges.
        """
        return {
            "total_rho": self.total_rho,
            "charges": [[charge.label, charge.rho] for charge in self._charges],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ZCDPAccountant":
        """Rebuild an accountant from :meth:`to_dict` output.

        Parameters
        ----------
        payload:
            A dict with ``total_rho`` (positive float) and ``charges``
            (sequence of ``[label, rho]`` pairs).

        Returns
        -------
        ZCDPAccountant
            A ledger with the same total budget and the same charges, in
            the same order.

        Raises
        ------
        repro.exceptions.SerializationError
            If the payload is structurally invalid or its charges exceed
            the declared total budget (a tampered or corrupt ledger).
        """
        from repro.exceptions import SerializationError

        try:
            accountant = cls(float(payload["total_rho"]))
            entries = list(payload["charges"])
        except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
            raise SerializationError(f"invalid accountant payload: {exc}") from exc
        for entry in entries:
            try:
                label, rho = entry
                accountant.charge(float(rho), label=str(label))
            except (TypeError, ValueError, ConfigurationError, PrivacyBudgetError) as exc:
                raise SerializationError(
                    f"invalid ledger entry {entry!r}: {exc}"
                ) from exc
        return accountant

    def __repr__(self) -> str:
        return (
            f"ZCDPAccountant(total_rho={self.total_rho!r}, "
            f"spent={self.spent:.6g}, charges={len(self._charges)})"
        )
