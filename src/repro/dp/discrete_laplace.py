"""Exact and vectorized sampling from the discrete Laplace distribution.

The discrete (two-sided geometric) Laplace distribution with scale ``s`` is
supported on the integers with ``P[X = x]`` proportional to
``exp(-|x| / s)``.  The exact sampler is Algorithm 2 of Canonne, Kamath &
Steinke (2020) and handles any positive rational scale; it is the proposal
distribution inside the exact discrete Gaussian sampler and is also exposed
directly for pure-DP mechanism variants.

:meth:`DiscreteLaplaceSampler.sample_columns` is the heterogeneous batched
API (one draw per column at per-column scales); its ``size=R`` form returns
an ``(R, columns)`` block of independent replicas — the rep-axis draw used
by the batched replication engine (:mod:`repro.core.replicated`).
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from repro.rng import ExactRandom, SeedLike, as_generator

__all__ = ["sample_discrete_laplace", "DiscreteLaplaceSampler"]


def _sample_geometric_exp1(random: ExactRandom) -> int:
    """Number of consecutive ``Bernoulli(exp(-1))`` successes (Geom support)."""
    from repro.dp.bernoulli_exp import bernoulli_exp_le1

    one = Fraction(1)
    count = 0
    while bernoulli_exp_le1(one, random):
        count += 1
    return count


def sample_discrete_laplace(scale: Fraction, random: ExactRandom) -> int:
    """Draw one exact sample from ``Lap_Z(scale)``.

    ``scale`` is the rational parameter ``s/t`` such that
    ``P[X = x] ∝ exp(-|x| * t / s)``.  The sampler first draws a geometric
    variable with parameter ``exp(-1/s')`` in *unit steps of the numerator*,
    rescales by the denominator via integer division, applies a random sign,
    and rejects the duplicated zero on the negative side so the result is
    exactly two-sided.
    """
    from repro.dp.bernoulli_exp import bernoulli_exp_le1

    scale = Fraction(scale)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    s = scale.numerator
    t = scale.denominator
    while True:
        u = random.randrange(s)
        # Accept the fractional offset u with probability exp(-u/s) ...
        p = Fraction(u, s)
        if not bernoulli_exp_le1(p, random):
            continue
        # ... then append exp(-1)-geometric whole units of s.
        v = _sample_geometric_exp1(random)
        x = u + s * v
        y = x // t
        negative = random.bernoulli(1, 2)
        if negative and y == 0:
            continue
        return -y if negative else y


class DiscreteLaplaceSampler:
    """Reusable discrete Laplace sampler bound to a random generator.

    Parameters
    ----------
    scale:
        Positive scale ``s`` of ``P[X = x] ∝ exp(-|x|/s)``; may be any value
        convertible to :class:`fractions.Fraction`.
    seed:
        Seed, :class:`numpy.random.Generator`, or ``None``.
    method:
        ``"exact"`` uses the rational-arithmetic rejection sampler for every
        draw.  ``"vectorized"`` uses numpy geometric draws with a
        floating-point parameter — distributionally correct up to float
        rounding of ``exp(-1/s)``, and roughly two orders of magnitude
        faster for large batches.
    """

    def __init__(self, scale, seed: SeedLike = None, method: str = "exact"):
        self.scale = Fraction(scale).limit_denominator(10**12)
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if method not in ("exact", "vectorized"):
            raise ValueError(f"method must be 'exact' or 'vectorized', got {method!r}")
        self.method = method
        self._generator = as_generator(seed)
        self._exact = ExactRandom(self._generator)

    @property
    def variance(self) -> float:
        """Exact variance ``2p/(1-p)^2`` with ``p = exp(-1/scale)``."""
        p = math.exp(-1 / float(self.scale))
        return 2 * p / (1 - p) ** 2

    def sample(self) -> int:
        """Draw a single integer sample."""
        if self.method == "exact":
            return sample_discrete_laplace(self.scale, self._exact)
        return int(self.sample_array(1)[0])

    def sample_array(self, shape) -> np.ndarray:
        """Draw an integer array of the given shape."""
        size = int(np.prod(shape)) if not np.isscalar(shape) else int(shape)
        if self.method == "exact":
            flat = np.array(
                [sample_discrete_laplace(self.scale, self._exact) for _ in range(size)],
                dtype=np.int64,
            )
            return flat.reshape(shape)
        return self._sample_vectorized(size).reshape(shape)

    def _sample_vectorized(self, size: int) -> np.ndarray:
        # Two-sided geometric: difference of two iid geometrics with
        # success probability 1 - exp(-1/s) is Lap_Z(s).
        q = 1.0 - math.exp(-1 / float(self.scale))
        g1 = self._generator.geometric(q, size=size) - 1
        g2 = self._generator.geometric(q, size=size) - 1
        return (g1 - g2).astype(np.int64)

    def sample_columns(self, scales, size: int | None = None) -> np.ndarray:
        """Per-column-scale draws (heterogeneous), optionally replicated.

        ``scales`` is a sequence of non-negative scales; entry ``j`` of the
        returned int64 vector is an independent ``Lap_Z(scales[j])`` draw
        (exactly 0 where ``scales[j] == 0``, the noiseless convention used
        by the counter banks).  The instance's own ``scale`` is ignored.

        With ``size=R`` the call returns a ``(R, len(scales))`` array of
        i.i.d. draws — the rep-axis API used by the replicated counter
        banks, which feed all ``R`` repetitions of an experiment from one
        batched draw per round.  ``size=None`` (default) keeps the legacy
        1-D shape and bit-stream.
        """
        if size is not None:
            if size < 0:
                raise ValueError(f"size must be non-negative, got {size}")
            return self.sample_array_2d(scales, size)
        if self.method == "exact":
            return self._sample_columns_exact(scales)
        return _sample_heterogeneous_laplace(
            np.asarray([float(s) for s in scales], dtype=np.float64), self._generator
        )

    def sample_array_2d(self, scales, n_rows: int) -> np.ndarray:
        """``(n_rows, len(scales))`` i.i.d. draws, column ``j`` at scale ``scales[j]``."""
        if n_rows < 0:
            raise ValueError(f"n_rows must be non-negative, got {n_rows}")
        n_cols = len(scales)
        if self.method == "exact":
            rows = [self._sample_columns_exact(scales) for _ in range(n_rows)]
            return np.stack(rows) if rows else np.zeros((0, n_cols), dtype=np.int64)
        tiled = np.tile(np.asarray([float(s) for s in scales], dtype=np.float64), n_rows)
        return _sample_heterogeneous_laplace(tiled, self._generator).reshape(n_rows, n_cols)

    def _sample_columns_exact(self, scales) -> np.ndarray:
        out = np.zeros(len(scales), dtype=np.int64)
        for j, scale in enumerate(scales):
            if not isinstance(scale, Fraction):
                scale = Fraction(scale).limit_denominator(10**12)
            if scale < 0:
                raise ValueError(f"scale must be non-negative, got {scale}")
            if scale:
                out[j] = sample_discrete_laplace(scale, self._exact)
        return out


def _sample_heterogeneous_laplace(
    scales: np.ndarray, generator: np.random.Generator
) -> np.ndarray:
    """One ``Lap_Z(scales[j])`` draw per entry; zero-scale entries yield 0."""
    if (scales < 0).any():
        raise ValueError("scale entries must be non-negative")
    out = np.zeros(scales.shape, dtype=np.int64)
    active = np.flatnonzero(scales > 0)
    if active.size == 0:
        return out
    q = 1.0 - np.exp(-1.0 / scales[active])
    g1 = generator.geometric(q) - 1
    g2 = generator.geometric(q) - 1
    out[active] = (g1 - g2).astype(np.int64)
    return out
