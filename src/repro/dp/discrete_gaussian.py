"""The discrete Gaussian distribution ``N_Z(0, sigma^2)``.

Definition 2.2 of the paper:  ``P[X = x] ∝ exp(-x^2 / (2 sigma^2))`` on the
integers.  All noise added by the paper's mechanisms (Algorithm 1 per-bin
histogram noise, Algorithm 3 tree-node noise) is discrete Gaussian because it
composes cleanly under zCDP and is supported on the integers, so noisy counts
remain valid (integer) synthetic-record counts.

Two samplers are provided:

* :func:`sample_discrete_gaussian` — the *exact* rejection sampler of
  Canonne, Kamath & Steinke (2020, Algorithm 3): a discrete Laplace proposal
  accepted with an exactly-computed rational ``Bernoulli(exp(-gamma))``.
  No floating point touches the distribution.
* :meth:`DiscreteGaussianSampler.sample_array` with ``method="vectorized"``
  — the same rejection scheme executed batch-wise in numpy, with the
  acceptance probability evaluated in double precision.  The distributional
  error is bounded by float rounding of ``exp``; at the scales used in the
  paper's experiments it is far below sampling noise.  The replication
  harness uses this path; individual mechanisms default to the exact path.

For the counter banks there are *heterogeneous* batched APIs:
:meth:`DiscreteGaussianSampler.sample_columns` draws one value per column
at per-column variances, and its ``size=R`` form returns an ``(R, columns)``
block — ``R`` independent replicas per call, the rep-axis draw behind the
batched replication engine (:mod:`repro.core.replicated`).
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from repro.dp.bernoulli_exp import bernoulli_exp
from repro.dp.discrete_laplace import sample_discrete_laplace
from repro.rng import ExactRandom, SeedLike, as_generator

__all__ = ["sample_discrete_gaussian", "DiscreteGaussianSampler"]


def sample_discrete_gaussian(sigma_sq: Fraction, random: ExactRandom) -> int:
    """Draw one exact sample from ``N_Z(0, sigma_sq)``.

    Uses a discrete Laplace proposal with integer scale
    ``t = floor(sigma) + 1`` and accepts ``Y`` with probability
    ``exp(-(|Y| - sigma_sq/t)^2 / (2 sigma_sq))``; the expected number of
    proposal rounds is a small constant (below ~1.6 for all ``sigma``).
    """
    sigma_sq = Fraction(sigma_sq)
    if sigma_sq < 0:
        raise ValueError(f"sigma_sq must be non-negative, got {sigma_sq}")
    if sigma_sq == 0:
        return 0
    t = math.isqrt(math.floor(sigma_sq)) + 1
    t_frac = Fraction(t)
    while True:
        y = sample_discrete_laplace(t_frac, random)
        gamma = (abs(y) - sigma_sq / t) ** 2 / (2 * sigma_sq)
        if bernoulli_exp(gamma, random):
            return y


class DiscreteGaussianSampler:
    """Reusable ``N_Z(0, sigma^2)`` sampler bound to a random generator.

    Parameters
    ----------
    sigma_sq:
        Non-negative variance parameter; any value convertible to
        :class:`fractions.Fraction`.  ``sigma_sq == 0`` yields the constant 0
        (useful for "infinite budget" oracle runs in tests).
    seed:
        Seed, :class:`numpy.random.Generator`, or ``None``.
    method:
        ``"exact"`` (default) or ``"vectorized"``; see the module docstring.

    Notes
    -----
    The variance of ``N_Z(0, sigma^2)`` is at most ``sigma^2`` (it is
    slightly smaller for small ``sigma``); the paper's accuracy statements
    use the ``sigma^2`` upper bound, and so does :mod:`repro.analysis.theory`.
    """

    def __init__(self, sigma_sq, seed: SeedLike = None, method: str = "exact"):
        self.sigma_sq = Fraction(sigma_sq).limit_denominator(10**12)
        if self.sigma_sq < 0:
            raise ValueError(f"sigma_sq must be non-negative, got {sigma_sq}")
        if method not in ("exact", "vectorized"):
            raise ValueError(f"method must be 'exact' or 'vectorized', got {method!r}")
        self.method = method
        self._generator = as_generator(seed)
        self._exact = ExactRandom(self._generator)

    @property
    def sigma(self) -> float:
        """Float standard-deviation parameter ``sqrt(sigma_sq)``."""
        return math.sqrt(float(self.sigma_sq))

    def sample(self) -> int:
        """Draw a single integer sample."""
        if self.sigma_sq == 0:
            return 0
        if self.method == "exact":
            return sample_discrete_gaussian(self.sigma_sq, self._exact)
        return int(self.sample_array(1)[0])

    def sample_array(self, shape) -> np.ndarray:
        """Draw an integer array of the given shape."""
        size = int(np.prod(shape)) if not np.isscalar(shape) else int(shape)
        if self.sigma_sq == 0:
            return np.zeros(shape, dtype=np.int64)
        if self.method == "exact":
            flat = np.array(
                [sample_discrete_gaussian(self.sigma_sq, self._exact) for _ in range(size)],
                dtype=np.int64,
            )
        else:
            flat = self._sample_vectorized(size)
        return flat.reshape(shape)

    def sample_columns(self, sigma_sqs, size: int | None = None) -> np.ndarray:
        """Per-column-variance draws (heterogeneous), optionally replicated.

        ``sigma_sqs`` is a sequence of non-negative variances (floats or
        :class:`~fractions.Fraction`); entry ``j`` of the returned int64
        vector is an independent ``N_Z(0, sigma_sqs[j])`` draw (exactly 0
        where ``sigma_sqs[j] == 0``).  The instance's own ``sigma_sq`` is
        ignored — this is the batched API used by the vectorized counter
        banks, which run many sub-mechanisms with different budgets and
        need a single noise draw per round.

        With ``size=R`` the call returns a ``(R, len(sigma_sqs))`` array of
        i.i.d. draws — ``R`` independent replicas of the length-``len``
        heterogeneous vector, drawn in one batch.  This is the rep-axis API
        behind the replicated counter banks: all ``R`` repetitions of a
        figure consume one ``(R, rows)`` draw per round instead of ``R``
        separate vectors.  ``size=None`` (default) keeps the legacy 1-D
        shape and bit-stream.
        """
        if size is not None:
            if size < 0:
                raise ValueError(f"size must be non-negative, got {size}")
            return self.sample_array_2d(sigma_sqs, size)
        if self.method == "exact":
            return self._sample_columns_exact(sigma_sqs)
        if not isinstance(sigma_sqs, np.ndarray):
            sigma_sqs = [float(s) for s in sigma_sqs]
        sigma_sqs = np.asarray(sigma_sqs, dtype=np.float64)
        return _sample_heterogeneous_gaussian(sigma_sqs, self._generator)

    def sample_array_2d(self, sigma_sqs, n_rows: int) -> np.ndarray:
        """``(n_rows, len(sigma_sqs))`` i.i.d. draws, column ``j`` at ``sigma_sqs[j]``."""
        if n_rows < 0:
            raise ValueError(f"n_rows must be non-negative, got {n_rows}")
        n_cols = len(sigma_sqs)
        if self.method == "exact":
            rows = [self._sample_columns_exact(sigma_sqs) for _ in range(n_rows)]
            return (
                np.stack(rows) if rows else np.zeros((0, n_cols), dtype=np.int64)
            )
        tiled = np.tile(np.asarray([float(s) for s in sigma_sqs], dtype=np.float64), n_rows)
        return _sample_heterogeneous_gaussian(tiled, self._generator).reshape(n_rows, n_cols)

    def _sample_columns_exact(self, sigma_sqs) -> np.ndarray:
        out = np.zeros(len(sigma_sqs), dtype=np.int64)
        for j, sigma_sq in enumerate(sigma_sqs):
            if not isinstance(sigma_sq, Fraction):
                sigma_sq = Fraction(sigma_sq).limit_denominator(10**12)
            if sigma_sq < 0:
                raise ValueError(f"sigma_sq must be non-negative, got {sigma_sq}")
            if sigma_sq:
                out[j] = sample_discrete_gaussian(sigma_sq, self._exact)
        return out

    def _sample_vectorized(self, size: int) -> np.ndarray:
        """Batch rejection sampling with float acceptance probabilities."""
        sigma_sq = float(self.sigma_sq)
        t = math.isqrt(math.floor(self.sigma_sq)) + 1
        q = 1.0 - math.exp(-1.0 / t)
        out = np.empty(size, dtype=np.int64)
        filled = 0
        generator = self._generator
        while filled < size:
            # Oversample: acceptance is at least ~0.4 for every sigma, so a
            # 3x batch nearly always finishes in one or two rounds.
            batch = max(64, 3 * (size - filled))
            g1 = generator.geometric(q, size=batch) - 1
            g2 = generator.geometric(q, size=batch) - 1
            y = (g1 - g2).astype(np.int64)
            gamma = (np.abs(y) - sigma_sq / t) ** 2 / (2.0 * sigma_sq)
            accept = generator.random(batch) < np.exp(-gamma)
            accepted = y[accept]
            take = min(accepted.size, size - filled)
            out[filled : filled + take] = accepted[:take]
            filled += take
        return out


def _sample_heterogeneous_gaussian(
    sigma_sqs: np.ndarray, generator: np.random.Generator
) -> np.ndarray:
    """One ``N_Z(0, sigma_sqs[j])`` draw per entry, in a single rejection loop.

    The same Canonne-Kamath-Steinke rejection scheme as the homogeneous
    vectorized path, but every entry carries its own proposal scale and
    acceptance probability; entries that reject are retried together until
    all are filled.  Zero-variance entries yield exactly 0.
    """
    if (sigma_sqs < 0).any():
        raise ValueError("sigma_sq entries must be non-negative")
    out = np.zeros(sigma_sqs.shape, dtype=np.int64)
    pending = np.flatnonzero(sigma_sqs > 0)
    if pending.size == 0:
        return out
    sigma_sq = sigma_sqs[pending]
    t = np.sqrt(np.floor(sigma_sq)).astype(np.int64) + 1
    q = 1.0 - np.exp(-1.0 / t)
    ratio = sigma_sq / t
    while pending.size:
        g1 = generator.geometric(q) - 1
        g2 = generator.geometric(q) - 1
        y = (g1 - g2).astype(np.int64)
        gamma = (np.abs(y) - ratio) ** 2 / (2.0 * sigma_sq)
        accept = generator.random(pending.size) < np.exp(-gamma)
        out[pending[accept]] = y[accept]
        keep = ~accept
        pending = pending[keep]
        sigma_sq, t, q, ratio = sigma_sq[keep], t[keep], q[keep], ratio[keep]
    return out
