"""Differential-privacy primitives.

This subpackage implements the noise and accounting substrate the paper's
synthesizers are built on:

* :mod:`repro.dp.bernoulli_exp` — exact ``Bernoulli(exp(-gamma))`` sampling
  for rational ``gamma`` (the building block of the exact samplers).
* :mod:`repro.dp.discrete_laplace` — exact discrete Laplace sampling.
* :mod:`repro.dp.discrete_gaussian` — the discrete Gaussian ``N_Z(0, sigma^2)``
  of Canonne, Kamath & Steinke (2020), used by every mechanism in the paper,
  in both an exact (rational-arithmetic) and a vectorized form.
* :mod:`repro.dp.accountant` — zero-concentrated DP (zCDP) budget ledger,
  composition, and conversion to approximate DP.
* :mod:`repro.dp.mechanisms` — the sensitivity-1 noisy histogram mechanism
  (stage 1 of Algorithm 1) and scalar noisy counts.
"""

from repro.dp.accountant import ZCDPAccountant, zcdp_to_approx_dp, approx_dp_to_zcdp
from repro.dp.bernoulli_exp import bernoulli_exp
from repro.dp.discrete_gaussian import (
    DiscreteGaussianSampler,
    sample_discrete_gaussian,
)
from repro.dp.discrete_laplace import (
    DiscreteLaplaceSampler,
    sample_discrete_laplace,
)
from repro.dp.mechanisms import GaussianHistogramMechanism, noisy_count
from repro.dp.pmf import (
    discrete_gaussian_normalizer,
    discrete_gaussian_pmf,
    discrete_gaussian_tail,
    discrete_gaussian_variance,
)

__all__ = [
    "discrete_gaussian_pmf",
    "discrete_gaussian_tail",
    "discrete_gaussian_normalizer",
    "discrete_gaussian_variance",
    "ZCDPAccountant",
    "zcdp_to_approx_dp",
    "approx_dp_to_zcdp",
    "bernoulli_exp",
    "DiscreteGaussianSampler",
    "sample_discrete_gaussian",
    "DiscreteLaplaceSampler",
    "sample_discrete_laplace",
    "GaussianHistogramMechanism",
    "noisy_count",
]
