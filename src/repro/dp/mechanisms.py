"""Basic discrete-Gaussian mechanisms.

Stage 1 of Algorithm 1 privatizes, at every update step, the histogram of
length-``k`` window patterns by adding independent discrete Gaussian noise
``N_Z(0, (T-k+1)/(2 rho))`` to every bin and charging ``rho/(T-k+1)`` zCDP
per step, for ``rho`` zCDP in total over the ``T-k+1`` steps (Theorem 3.1).

A note on sensitivity conventions.  The paper states "the sensitivity of the
count ``C_s^t`` is 1", which corresponds to the *add/remove* neighboring
relation: one individual's presence contributes to exactly one bin per step,
so the per-step histogram vector has L2 sensitivity 1 and the per-step cost
is ``1/(2 sigma^2)``.  Under the *substitution* relation (replace one
individual's whole history), a step histogram changes in at most two cells
(one decrement, one increment) and the L2 sensitivity is ``sqrt(2)``,
doubling the cost.  :class:`GaussianHistogramMechanism` takes the
sensitivity as a parameter with default 1.0 so the paper's accounting is
reproduced exactly, while the stricter convention remains one argument away.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.dp.accountant import gaussian_rho
from repro.dp.discrete_gaussian import DiscreteGaussianSampler
from repro.exceptions import ConfigurationError
from repro.rng import SeedLike

__all__ = ["GaussianHistogramMechanism", "noisy_count"]


def noisy_count(
    count: int,
    sigma_sq,
    seed: SeedLike = None,
    method: str = "exact",
) -> int:
    """Return ``count + N_Z(0, sigma_sq)`` — one scalar noisy count."""
    sampler = DiscreteGaussianSampler(sigma_sq, seed=seed, method=method)
    return int(count) + sampler.sample()


class GaussianHistogramMechanism:
    """Discrete-Gaussian noisy histogram with zCDP accounting.

    Parameters
    ----------
    n_bins:
        Number of histogram cells (``2**k`` in Algorithm 1).
    sigma_sq:
        Per-bin discrete Gaussian variance.  Algorithm 1 uses
        ``(T - k + 1) / (2 rho)``.
    sensitivity:
        L2 sensitivity of the histogram vector between neighboring datasets;
        the per-release zCDP cost is ``sensitivity^2 / (2 sigma_sq)``.  The
        default 1.0 matches the paper's add/remove accounting; pass
        ``sqrt(2)`` for substitution neighbors.
    method:
        Sampler backend, ``"exact"`` or ``"vectorized"``.
    """

    def __init__(
        self,
        n_bins: int,
        sigma_sq,
        sensitivity: float = 1.0,
        seed: SeedLike = None,
        method: str = "exact",
    ):
        if n_bins <= 0:
            raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
        self.n_bins = int(n_bins)
        self.sigma_sq = Fraction(sigma_sq).limit_denominator(10**12)
        self.sensitivity = float(sensitivity)
        self._sampler = DiscreteGaussianSampler(self.sigma_sq, seed=seed, method=method)

    @property
    def rho_per_release(self) -> float:
        """zCDP cost charged for each call to :meth:`release`."""
        if self.sigma_sq == 0:
            return float("inf")
        return gaussian_rho(self.sensitivity, float(self.sigma_sq))

    def release(self, counts: np.ndarray) -> np.ndarray:
        """Return ``counts`` plus fresh iid discrete Gaussian noise per bin.

        ``counts`` must be an integer vector of length ``n_bins``.  The
        result is an ``int64`` vector; it may contain negative entries —
        handling those is the caller's job (Algorithm 1 pads, the clamping
        baseline clamps).
        """
        counts = np.asarray(counts)
        if counts.shape != (self.n_bins,):
            raise ConfigurationError(
                f"expected a vector of {self.n_bins} counts, got shape {counts.shape}"
            )
        if not np.issubdtype(counts.dtype, np.integer):
            raise ConfigurationError(f"counts must be integers, got dtype {counts.dtype}")
        noise = self._sampler.sample_array(self.n_bins)
        return counts.astype(np.int64) + noise
